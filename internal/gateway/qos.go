package gateway

import (
	"context"
	"math"
	"sync"
)

// drainScheduler arbitrates a fixed pool of NDP drain slots across tenants
// by stride scheduling: every grant advances the owning tenant's pass value
// by 1/weight, and when a slot frees the queued waiter belonging to the
// smallest-pass tenant runs next. Long-run slot share therefore converges
// to the weight ratio, while no tenant starves — a waiting tenant's pass is
// frozen, so heavier tenants' passes eventually overtake it and its head
// waiter becomes the minimum.
type drainScheduler struct {
	mu     sync.Mutex
	slots  int
	inUse  int
	queues map[string][]*drainWaiter // tenant -> FIFO of parked acquirers
	pass   map[string]float64
	vtime  float64 // pass of the most recent grant; newcomers start here
}

// drainWaiter is one parked Acquire. granted is written under the scheduler
// mutex and resolves the grant-vs-cancel race: a waiter that was granted a
// slot in the same instant its context expired must hand the slot back, not
// leak it.
type drainWaiter struct {
	tenant  string
	weight  float64
	ch      chan struct{}
	granted bool
}

func newDrainScheduler(slots int) *drainScheduler {
	return &drainScheduler{
		slots:  slots,
		queues: make(map[string][]*drainWaiter),
		pass:   make(map[string]float64),
	}
}

// Acquire claims one drain slot for tenant, parking behind the weighted
// schedule while all slots are busy. The returned release must be called
// when the drain finishes (calling it more than once is harmless). A
// canceled ctx abandons the wait and removes the parked entry.
func (s *drainScheduler) Acquire(ctx context.Context, tenant string, weight float64) (func(), error) {
	if weight <= 0 {
		weight = 1
	}
	s.mu.Lock()
	if _, ok := s.pass[tenant]; !ok {
		// A newcomer starts at the current virtual time rather than zero,
		// so it cannot replay the history it missed and monopolize slots.
		s.pass[tenant] = s.vtime
	}
	if s.inUse < s.slots && s.queuedLocked() == 0 {
		s.grantLocked(tenant, weight)
		s.mu.Unlock()
		return s.releaseFunc(), nil
	}
	w := &drainWaiter{tenant: tenant, weight: weight, ch: make(chan struct{})}
	s.queues[tenant] = append(s.queues[tenant], w)
	s.mu.Unlock()

	select {
	case <-w.ch:
		return s.releaseFunc(), nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	if w.granted {
		// The grant raced the cancellation: we own a slot the caller will
		// never use. Recycle it to the next waiter immediately.
		s.releaseLocked()
		s.mu.Unlock()
		return nil, ctx.Err()
	}
	s.removeLocked(w)
	s.mu.Unlock()
	return nil, ctx.Err()
}

// Queued reports how many acquirers are parked (metrics).
func (s *drainScheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked()
}

// InUse reports how many slots are held (metrics).
func (s *drainScheduler) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

func (s *drainScheduler) grantLocked(tenant string, weight float64) {
	s.inUse++
	s.vtime = s.pass[tenant]
	s.pass[tenant] += 1 / weight
}

// releaseFunc wraps releaseLocked in a once so double release (defensive
// callers) cannot corrupt the slot count.
func (s *drainScheduler) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.releaseLocked()
			s.mu.Unlock()
		})
	}
}

func (s *drainScheduler) releaseLocked() {
	s.inUse--
	for s.inUse < s.slots {
		w := s.popMinLocked()
		if w == nil {
			return
		}
		w.granted = true
		s.grantLocked(w.tenant, w.weight)
		close(w.ch)
	}
}

// popMinLocked removes and returns the head waiter of the smallest-pass
// tenant with a non-empty queue (ties break alphabetically so scheduling is
// deterministic), or nil when nothing is parked.
func (s *drainScheduler) popMinLocked() *drainWaiter {
	best := ""
	bestPass := math.Inf(1)
	for t, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		if p := s.pass[t]; p < bestPass || (p == bestPass && (best == "" || t < best)) {
			best, bestPass = t, p
		}
	}
	if best == "" {
		return nil
	}
	q := s.queues[best]
	w := q[0]
	if len(q) == 1 {
		delete(s.queues, best)
	} else {
		s.queues[best] = q[1:]
	}
	return w
}

func (s *drainScheduler) removeLocked(w *drainWaiter) {
	q := s.queues[w.tenant]
	for i, x := range q {
		if x == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(s.queues, w.tenant)
	} else {
		s.queues[w.tenant] = q
	}
}

func (s *drainScheduler) queuedLocked() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
