package gateway

import "net/url"

// JobKey maps a (namespace, run) pair onto the shardstore keyspace as the
// job component of iostore.Key. Path-escaping each component makes the
// mapping injective — no tenant can mint a namespace or run ID whose
// concatenation collides with another tenant's ("a/b"+"c" vs "a"+"b/c"
// escape differently) — so isolation between namespaces reduces to plain
// key inequality in every backend, with no backend-side tenancy support
// needed. The "ns/" prefix keeps gateway-minted jobs disjoint from jobs
// written by directly-wired clusters sharing the same store.
func JobKey(namespace, run string) string {
	return "ns/" + url.PathEscape(namespace) + "/" + url.PathEscape(run)
}
