package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

// BenchmarkGatewaySave measures end-to-end save throughput (commit + NDP
// drain + durable ack over HTTP) as the concurrent tenant count scales.
// Each tenant hammers its own namespace/run, so the benchmark exercises
// the multi-tenant session map, quota accounting, and per-tenant rate
// machinery, not just one hot session. Custom metrics: req/s aggregate
// and the gateway's own p99 request latency in ms.
func BenchmarkGatewaySave(b *testing.B) {
	for _, tenants := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			var ts []Tenant
			for i := 0; i < tenants; i++ {
				ts = append(ts, Tenant{
					Name:  fmt.Sprintf("t%02d", i),
					Token: fmt.Sprintf("tok-%02d", i),
				})
			}
			srv, err := New(Config{
				Store:        iostore.New(nvm.Pacer{}),
				Tenants:      ts,
				DrainTimeout: 30 * time.Second,
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			hs := httptest.NewServer(srv)
			defer func() {
				hs.Close()
				srv.Shutdown(context.Background())
			}()

			payload := bytes.Repeat([]byte("bench-state "), 341) // ~4 KiB
			var ops atomic.Int64
			var failed atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < tenants; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					c := NewClient(hs.URL, fmt.Sprintf("tok-%02d", i))
					ns := fmt.Sprintf("t%02d", i)
					for step := 0; ; step++ {
						if ops.Add(1) > int64(b.N) {
							return
						}
						if _, err := c.Save(context.Background(), ns, "bench", 0, step, payload); err != nil {
							failed.Add(1)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d tenants failed their saves", n)
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			p99 := srv.Metrics().Histogram(`ndpcr_gateway_request_seconds{op="save"}`, "", 0).Quantile(0.99)
			b.ReportMetric(p99*1000, "p99_ms")
			b.SetBytes(int64(len(payload)))
		})
	}
}
