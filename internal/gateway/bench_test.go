package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
	"ndpcr/internal/units"
)

// BenchmarkGatewaySave measures end-to-end save throughput (commit + NDP
// drain + durable ack over HTTP) as the concurrent tenant count scales.
// Each tenant hammers its own namespace/run, so the benchmark exercises
// the multi-tenant session map, quota accounting, and per-tenant rate
// machinery, not just one hot session. Custom metrics: req/s aggregate
// and the gateway's own p99 request latency in ms.
func BenchmarkGatewaySave(b *testing.B) {
	for _, tenants := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			var ts []Tenant
			for i := 0; i < tenants; i++ {
				ts = append(ts, Tenant{
					Name:  fmt.Sprintf("t%02d", i),
					Token: fmt.Sprintf("tok-%02d", i),
				})
			}
			srv, err := New(Config{
				Store:        iostore.New(nvm.Pacer{}),
				Tenants:      ts,
				DrainTimeout: 30 * time.Second,
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			hs := httptest.NewServer(srv)
			defer func() {
				hs.Close()
				srv.Shutdown(context.Background())
			}()

			payload := bytes.Repeat([]byte("bench-state "), 341) // ~4 KiB
			var ops atomic.Int64
			var failed atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < tenants; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					c := NewClient(hs.URL, fmt.Sprintf("tok-%02d", i))
					ns := fmt.Sprintf("t%02d", i)
					for step := 0; ; step++ {
						if ops.Add(1) > int64(b.N) {
							return
						}
						if _, err := c.Save(context.Background(), ns, "bench", 0, step, payload); err != nil {
							failed.Add(1)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d tenants failed their saves", n)
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			p99 := srv.Metrics().Histogram(`ndpcr_gateway_request_seconds{op="save"}`, "", 0).Quantile(0.99)
			b.ReportMetric(p99*1000, "p99_ms")
			b.SetBytes(int64(len(payload)))
		})
	}
}

// BenchmarkGatewaySaveAsync measures the async-acknowledge win: the same
// save workload against the same paced store, acknowledged either at store
// durability (mode=sync, the durable-before-ack baseline) or at NVM
// durability with the drain in the background (mode=async). The store is
// paced at a realistic I/O-level bandwidth so the drain has a real cost to
// hide; the claim the async tier makes is that the save p99 observed by the
// client drops strictly below the sync baseline because the drain latency
// leaves the ack path.
func BenchmarkGatewaySaveAsync(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run("mode="+mode, func(b *testing.B) {
			// ~64 KiB payloads over a 500 MB/s paced store: each drain
			// carries ~130 µs of simulated device time that sync acks must
			// wait out and async acks hide.
			pacer := nvm.Pacer{
				Bandwidth: 500 * units.MBps,
				Sleep:     func(s units.Seconds) { time.Sleep(s.Duration()) },
			}
			srv, err := New(Config{
				Store:             iostore.New(pacer),
				Tenants:           []Tenant{{Name: "t00", Token: "tok-00"}},
				DrainTimeout:      30 * time.Second,
				AsyncAck:          mode == "async",
				AsyncDrainTimeout: 2 * time.Minute,
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			hs := httptest.NewServer(srv)
			defer func() {
				hs.Close()
				// Shutdown waits out the pending background drains, so the
				// async mode is not allowed to cheat by never finishing.
				sctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				if err := srv.Shutdown(sctx); err != nil {
					b.Errorf("shutdown with pending drains: %v", err)
				}
			}()

			payload := bytes.Repeat([]byte("async-bench-state "), 3641) // ~64 KiB
			c := NewClient(hs.URL, "tok-00")
			save := func(step int) (uint64, error) {
				if mode == "async" {
					return c.SaveAsync(context.Background(), "t00", "bench", 0, step, payload)
				}
				return c.Save(context.Background(), "t00", "bench", 0, step, payload)
			}
			b.ResetTimer()
			start := time.Now()
			for step := 0; step < b.N; step++ {
				if _, err := save(step); err != nil {
					b.Fatalf("save step %d: %v", step, err)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			p99 := srv.Metrics().Histogram(`ndpcr_gateway_request_seconds{op="save"}`, "", 0).Quantile(0.99)
			b.ReportMetric(p99*1000, "p99_ms")
			b.SetBytes(int64(len(payload)))
		})
	}
}
