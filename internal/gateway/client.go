package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// APIError is a gateway rejection decoded back into its typed form: the
// HTTP status plus the stable machine-readable code the server attached.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gateway: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Client is a Go client for the gateway API, scoped to one tenant token.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient builds a client for the gateway at base (e.g.
// "http://127.0.0.1:9600") presenting the given bearer token.
func NewClient(base, token string) *Client {
	return &Client{base: base, token: token, http: &http.Client{}}
}

// Checkpoint is one restored checkpoint: its payload plus identity.
type Checkpoint struct {
	ID    uint64
	Step  int
	Level string
	Data  []byte
}

func (c *Client) runURL(ns, run, tail string) string {
	u := c.base + "/v1/ns/" + url.PathEscape(ns) + "/runs/" + url.PathEscape(run) + tail
	return u
}

func (c *Client) do(ctx context.Context, method, u string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		var e struct {
			Error   string `json:"error"`
			Message string `json:"message"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(raw, &e) != nil || e.Error == "" {
			e.Error, e.Message = "internal", string(raw)
		}
		return nil, &APIError{Status: resp.StatusCode, Code: e.Error, Message: e.Message}
	}
	return resp, nil
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Save writes one snapshot as rank's next checkpoint of ns/run and returns
// the durable checkpoint ID.
func (c *Client) Save(ctx context.Context, ns, run string, rank, step int, snapshot []byte) (uint64, error) {
	u := c.runURL(ns, run, "/checkpoints") + "?rank=" + strconv.Itoa(rank) + "&step=" + strconv.Itoa(step)
	resp, err := c.do(ctx, http.MethodPost, u, snapshot)
	if err != nil {
		return 0, err
	}
	var out struct {
		ID uint64 `json:"id"`
	}
	if err := decodeJSON(resp, &out); err != nil {
		return 0, fmt.Errorf("gateway: decoding save response: %w", err)
	}
	return out.ID, nil
}

// SaveAsync writes one snapshot with asynchronous acknowledgment
// (?durable=nvm): it returns as soon as the gateway holds the snapshot
// NVM-durably, while propagation to the global store continues in the
// background. Poll Durability (or call it with wait="store") to learn when
// — or whether — the checkpoint became store-durable.
func (c *Client) SaveAsync(ctx context.Context, ns, run string, rank, step int, snapshot []byte) (uint64, error) {
	u := c.runURL(ns, run, "/checkpoints") + "?rank=" + strconv.Itoa(rank) +
		"&step=" + strconv.Itoa(step) + "&durable=nvm"
	resp, err := c.do(ctx, http.MethodPost, u, snapshot)
	if err != nil {
		return 0, err
	}
	var out struct {
		ID uint64 `json:"id"`
	}
	if err := decodeJSON(resp, &out); err != nil {
		return 0, fmt.Errorf("gateway: decoding save response: %w", err)
	}
	return out.ID, nil
}

// Durability is one checkpoint's per-level durability state.
type Durability struct {
	ID      uint64          `json:"id"`
	Levels  map[string]bool `json:"levels"`
	Failed  bool            `json:"failed"`
	Failure string          `json:"failure"`
}

// Durable reports whether the checkpoint reached the named level
// ("nvm", "partner", "erasure", "store").
func (d Durability) Durable(level string) bool { return d.Levels[level] }

// Durability fetches one checkpoint's durability state. A non-empty wait
// names a level ("store", "nvm", ...) to block for (bounded by the
// gateway's drain timeout) before reporting.
func (c *Client) Durability(ctx context.Context, ns, run string, rank int, id uint64, wait string) (Durability, error) {
	u := c.runURL(ns, run, "/checkpoints/"+strconv.FormatUint(id, 10)+"/durability") +
		"?rank=" + strconv.Itoa(rank)
	if wait != "" {
		u += "&wait=" + url.QueryEscape(wait)
	}
	resp, err := c.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Durability{}, err
	}
	var out Durability
	if err := decodeJSON(resp, &out); err != nil {
		return Durability{}, fmt.Errorf("gateway: decoding durability response: %w", err)
	}
	return out, nil
}

// List reports the checkpoint IDs stored for rank of ns/run.
func (c *Client) List(ctx context.Context, ns, run string, rank int) ([]uint64, error) {
	u := c.runURL(ns, run, "/checkpoints") + "?rank=" + strconv.Itoa(rank)
	resp, err := c.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		IDs []uint64 `json:"ids"`
	}
	if err := decodeJSON(resp, &out); err != nil {
		return nil, fmt.Errorf("gateway: decoding list response: %w", err)
	}
	return out.IDs, nil
}

// snapshotFrom decodes a snapshot-bearing response.
func snapshotFrom(resp *http.Response) (Checkpoint, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("gateway: reading snapshot: %w", err)
	}
	id, _ := strconv.ParseUint(resp.Header.Get("X-Ndpcr-Checkpoint"), 10, 64)
	step, _ := strconv.Atoi(resp.Header.Get("X-Ndpcr-Step"))
	return Checkpoint{
		ID:    id,
		Step:  step,
		Level: resp.Header.Get("X-Ndpcr-Level"),
		Data:  data,
	}, nil
}

// Load restores one specific checkpoint ID.
func (c *Client) Load(ctx context.Context, ns, run string, rank int, id uint64) (Checkpoint, error) {
	u := c.runURL(ns, run, "/checkpoints/"+strconv.FormatUint(id, 10)) + "?rank=" + strconv.Itoa(rank)
	resp, err := c.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Checkpoint{}, err
	}
	return snapshotFrom(resp)
}

// Delete removes one checkpoint.
func (c *Client) Delete(ctx context.Context, ns, run string, rank int, id uint64) error {
	u := c.runURL(ns, run, "/checkpoints/"+strconv.FormatUint(id, 10)) + "?rank=" + strconv.Itoa(rank)
	resp, err := c.do(ctx, http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Resume restores rank's newest checkpoint; with ranks > 0 it restores
// this rank's member of the newest restart line common to ranks [0,ranks).
func (c *Client) Resume(ctx context.Context, ns, run string, rank, ranks int) (Checkpoint, error) {
	u := c.runURL(ns, run, "/resume") + "?rank=" + strconv.Itoa(rank)
	if ranks > 0 {
		u += "&ranks=" + strconv.Itoa(ranks)
	}
	resp, err := c.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Checkpoint{}, err
	}
	return snapshotFrom(resp)
}

// RestorePlan mirrors the restore endpoint's plan-mode response.
type RestorePlan struct {
	Line        uint64   `json:"line"`
	SourceRanks int      `json:"source_ranks"`
	TargetRanks int      `json:"target_ranks"`
	TotalShards int      `json:"total_shards"`
	Identity    bool     `json:"identity"`
	FailedLines []uint64 `json:"failed_lines"`
	Targets     []struct {
		Target  int `json:"target"`
		Fetches []struct {
			SourceRank int    `json:"source_rank"`
			Line       uint64 `json:"line"`
			Lo         int    `json:"lo"`
			Hi         int    `json:"hi"`
			Whole      bool   `json:"whole"`
		} `json:"fetches"`
	} `json:"targets"`
}

func restoreBody(ranks, targetRanks int, line uint64) []byte {
	b, _ := json.Marshal(map[string]any{
		"ranks": ranks, "target_ranks": targetRanks, "line": line,
	})
	return b
}

// PlanRestore asks the gateway to plan an elastic restart of a job
// checkpointed at ranks ranks onto targetRanks ranks. line pins a restart
// line; zero picks the newest, falling back across older lines. No
// payload bytes move: the returned plan says which source shard ranges
// each restart target will fetch.
func (c *Client) PlanRestore(ctx context.Context, ns, run string, ranks, targetRanks int, line uint64) (RestorePlan, error) {
	resp, err := c.do(ctx, http.MethodPost, c.runURL(ns, run, "/restore"),
		restoreBody(ranks, targetRanks, line))
	if err != nil {
		return RestorePlan{}, err
	}
	var out RestorePlan
	if err := decodeJSON(resp, &out); err != nil {
		return RestorePlan{}, fmt.Errorf("gateway: decoding restore plan: %w", err)
	}
	return out, nil
}

// RestoreMember executes member's slice of an elastic restart plan and
// returns the re-sharded snapshot that target boots from. Pin line (from a
// prior PlanRestore) when restoring several members so they all restore
// the same cut.
func (c *Client) RestoreMember(ctx context.Context, ns, run string, ranks, targetRanks, member int, line uint64) (Checkpoint, error) {
	u := c.runURL(ns, run, "/restore") + "?member=" + strconv.Itoa(member)
	resp, err := c.do(ctx, http.MethodPost, u, restoreBody(ranks, targetRanks, line))
	if err != nil {
		return Checkpoint{}, err
	}
	return snapshotFrom(resp)
}
