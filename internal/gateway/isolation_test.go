package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
	"ndpcr/internal/shardstore"
)

func TestJobKeyInjective(t *testing.T) {
	// Pairs an attacker could craft to collide a naive "ns/run"
	// concatenation. Every pair must map to distinct job keys.
	pairs := [][2][2]string{
		{{"a/b", "c"}, {"a", "b/c"}},
		{{"a", "b"}, {"a/b", ""}},
		{{"ns", "r%2Fx"}, {"ns", "r/x"}},
		{{"ns/", "r"}, {"ns", "/r"}},
	}
	for _, p := range pairs {
		k1, k2 := JobKey(p[0][0], p[0][1]), JobKey(p[1][0], p[1][1])
		if k1 == k2 {
			t.Fatalf("JobKey(%q,%q) == JobKey(%q,%q) == %q",
				p[0][0], p[0][1], p[1][0], p[1][1], k1)
		}
	}
}

// TestNamespacesDisjointInShardstore drives two tenants with identical run
// and checkpoint IDs through a real sharded store and proves their objects
// land under disjoint keys: same-looking runs from different namespaces
// can never alias each other's placement.
func TestNamespacesDisjointInShardstore(t *testing.T) {
	var members []shardstore.Member
	backends := make([]*iostore.Store, 3)
	for i := range backends {
		backends[i] = iostore.New(nvm.Pacer{})
		members = append(members, shardstore.Member{
			Name:  fmt.Sprintf("backend-%d", i),
			Store: backends[i],
		})
	}
	shard, err := shardstore.New(members, shardstore.Config{Replicas: 2})
	if err != nil {
		t.Fatalf("shardstore.New: %v", err)
	}
	defer shard.Close()

	_, ts := newTestServer(t, func(c *Config) { c.Store = shard })
	ctx := context.Background()

	// Identical run IDs, ranks, steps — only the namespace differs.
	clients := map[string]*Client{
		"acme":  NewClient(ts.URL, "tok-acme"),
		"umbra": NewClient(ts.URL, "tok-umbra"),
	}
	for ns, c := range clients {
		payload := []byte("secret state of " + ns)
		if _, err := c.Save(ctx, ns, "train", 0, 1, payload); err != nil {
			t.Fatalf("%s save: %v", ns, err)
		}
	}
	// Each tenant reads back exactly its own bytes through the shared
	// store and run ID.
	for ns, c := range clients {
		cp, err := c.Load(ctx, ns, "train", 0, 1)
		if err != nil {
			t.Fatalf("%s load: %v", ns, err)
		}
		want := []byte("secret state of " + ns)
		if !bytes.Equal(cp.Data, want) {
			t.Fatalf("%s loaded %q — cross-tenant bleed", ns, cp.Data)
		}
	}
	// The backends hold both objects under distinct job keys.
	jobs := map[string]int{}
	for _, b := range backends {
		for _, ns := range []string{"acme", "umbra"} {
			if _, ok, _ := b.Stat(ctx, iostore.Key{Job: JobKey(ns, "train"), Rank: 0, ID: 1}); ok {
				jobs[ns]++
			}
		}
	}
	for _, ns := range []string{"acme", "umbra"} {
		if jobs[ns] == 0 {
			t.Fatalf("namespace %s has no replicas in any backend", ns)
		}
	}
}

// TestCrossTenantInvisibility checks the full negative surface: a tenant
// can neither read, list, delete, nor resume another tenant's namespace,
// and every rejection is the same typed 403 (no existence oracle).
func TestCrossTenantInvisibility(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ctx := context.Background()
	owner := NewClient(ts.URL, "tok-acme")
	intruder := NewClient(ts.URL, "tok-umbra")

	id, err := owner.Save(ctx, "acme", "r", 0, 1, []byte("private"))
	if err != nil {
		t.Fatalf("owner save: %v", err)
	}

	checks := map[string]func() error{
		"load":   func() error { _, err := intruder.Load(ctx, "acme", "r", 0, id); return err },
		"list":   func() error { _, err := intruder.List(ctx, "acme", "r", 0); return err },
		"save":   func() error { _, err := intruder.Save(ctx, "acme", "r", 0, 2, []byte("overwrite")); return err },
		"delete": func() error { return intruder.Delete(ctx, "acme", "r", 0, id) },
		"resume": func() error { _, err := intruder.Resume(ctx, "acme", "r", 0, 0); return err },
	}
	for op, fn := range checks {
		err := fn()
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusForbidden || ae.Code != "namespace_forbidden" {
			t.Fatalf("%s across tenants: err = %v, want 403 namespace_forbidden", op, err)
		}
	}
	// The owner's data survived the intrusion attempts untouched.
	cp, err := owner.Load(ctx, "acme", "r", 0, id)
	if err != nil || !bytes.Equal(cp.Data, []byte("private")) {
		t.Fatalf("owner data damaged: %q, %v", cp.Data, err)
	}
}

// TestSharedNamespaceGrant is the positive counterpart: a tenant granted
// an extra namespace can use it.
func TestSharedNamespaceGrant(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Tenants = []Tenant{
			{Name: "acme", Token: "tok-acme", Namespaces: []string{"acme", "shared"}},
			{Name: "umbra", Token: "tok-umbra", Namespaces: []string{"umbra", "shared"}},
		}
	})
	ctx := context.Background()
	a := NewClient(ts.URL, "tok-acme")
	u := NewClient(ts.URL, "tok-umbra")
	id, err := a.Save(ctx, "shared", "r", 0, 1, []byte("handoff"))
	if err != nil {
		t.Fatalf("save to shared ns: %v", err)
	}
	cp, err := u.Load(ctx, "shared", "r", 0, id)
	if err != nil || string(cp.Data) != "handoff" {
		t.Fatalf("load from shared ns: %q, %v", cp.Data, err)
	}
}
