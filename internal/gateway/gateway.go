// Package gateway is the multi-tenant checkpoint-as-a-service front door
// over the NDP stack: an HTTP/JSON API that maps authenticated tenants'
// namespaces and run IDs onto the shardstore keyspace and drives the
// existing node → NDP → store pipeline for every save, load, and resume.
// Tenants get bearer-token identity, byte/checkpoint/in-flight quotas, and
// token-bucket rate limits; the gateway gets request contexts threaded end
// to end (a disconnected client cancels its in-flight drain wait) and a
// graceful shutdown that drains accepted requests before exiting.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ndpcr/internal/cluster"
	"ndpcr/internal/cluster/elastic"
	"ndpcr/internal/compress"
	"ndpcr/internal/faultinject"
	"ndpcr/internal/metrics"
	"ndpcr/internal/node"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/ndp"
	"ndpcr/internal/node/nvm"
)

// Config assembles a gateway server.
type Config struct {
	// Store is the backing checkpoint store (required): typically a
	// sharded replicated tier (shardstore.Store), but any
	// iostore.Backend works.
	Store iostore.Backend
	// Tenants is the static principal set (see LoadTenants).
	Tenants []Tenant

	// Codec compresses drained checkpoints; nil drains raw.
	Codec compress.Codec
	// BlockSize is the drain streaming unit (node default when zero).
	BlockSize int
	// DrainWindow bounds in-flight drain writes (node default when zero).
	DrainWindow int
	// SessionNVM sizes each session's local NVM region (node default
	// when zero).
	SessionNVM int64
	// RetainLocal bounds how many drained checkpoints each session keeps
	// in local NVM as a restore cache; older ones are evicted once their
	// drain completes. Zero selects 4; negative retains everything.
	RetainLocal int
	// DrainTimeout bounds how long a save waits for its NDP drain to
	// reach the global store before rolling the checkpoint back
	// (default 30s).
	DrainTimeout time.Duration

	// AsyncAck switches saves to VELOC-style asynchronous acknowledgment:
	// a save returns 202 as soon as the snapshot is NVM-durable, and the
	// drain to the global store completes in the background (observable
	// through the durability endpoint). A per-request ?durable=store|nvm
	// query overrides the mode either way.
	AsyncAck bool
	// AsyncDrainTimeout bounds the background store-durability wait for an
	// async-acked save before it is rolled back and reported failed
	// (default 4×DrainTimeout).
	AsyncDrainTimeout time.Duration
	// DrainSlots bounds how many NDP drains run concurrently across all
	// sessions; tenants share the pool in proportion to their DrainWeight
	// (stride-scheduled, starvation-free). Zero leaves drains ungated.
	DrainSlots int
	// MaxDrainAttempts / DrainRetryBackoff forward to every session node:
	// automatic NDP drain retries with linear backoff before a checkpoint
	// is permanently failed (zero keeps the legacy no-retry behavior).
	MaxDrainAttempts  int
	DrainRetryBackoff time.Duration

	// Injector enables fault injection at the gateway.handler site.
	Injector *faultinject.Injector
	// Metrics receives the ndpcr_gateway_* series (and every session
	// node's series); nil creates a private registry.
	Metrics *metrics.Registry
	// Now substitutes the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Server is the gateway. It implements http.Handler.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	mux     *http.ServeMux
	now     func() time.Time
	byToken map[string]*tenantState

	sched   *drainScheduler // nil unless DrainSlots > 0
	asyncWG sync.WaitGroup  // background async-save completion waits

	mu        sync.Mutex
	sessions  map[sessKey]*node.Node
	draining  bool
	active    int
	drainDone chan struct{}

	mAuthFailures     *metrics.Counter
	mRateRejects      *metrics.Counter
	mCanceled         *metrics.Counter
	mFaults           *metrics.Counter
	mInflight         *metrics.Gauge
	mAsyncPending     *metrics.Gauge
	mAsyncFails       *metrics.Counter
	mBackpressure     *metrics.Counter
	mRestoreFallbacks *metrics.Counter
}

type sessKey struct {
	job  string
	rank int
}

// New builds a gateway server over cfg.Store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("gateway: Config.Store is required")
	}
	if err := ValidateTenants(cfg.Tenants); err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.AsyncDrainTimeout <= 0 {
		cfg.AsyncDrainTimeout = 4 * cfg.DrainTimeout
	}
	if cfg.RetainLocal == 0 {
		cfg.RetainLocal = 4
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Metrics,
		now:      cfg.Now,
		byToken:  make(map[string]*tenantState, len(cfg.Tenants)),
		sessions: make(map[sessKey]*node.Node),
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	if s.now == nil {
		s.now = time.Now
	}
	for _, t := range cfg.Tenants {
		s.byToken[t.Token] = newTenantState(t, s.now())
	}
	s.mAuthFailures = s.reg.Counter("ndpcr_gateway_auth_failures_total",
		"requests rejected for a missing or unknown bearer token")
	s.mRateRejects = s.reg.Counter("ndpcr_gateway_rate_limit_rejections_total",
		"requests rejected by a tenant's token-bucket rate limit")
	s.mCanceled = s.reg.Counter("ndpcr_gateway_canceled_requests_total",
		"requests abandoned because the client disconnected mid-flight")
	s.mFaults = s.reg.Counter("ndpcr_gateway_faults_injected_total",
		"requests failed or delayed by the gateway.handler fault site")
	s.mInflight = s.reg.Gauge("ndpcr_gateway_inflight_requests",
		"requests currently being served")
	s.mAsyncPending = s.reg.Gauge("ndpcr_gateway_async_pending",
		"async-acked saves whose background store drain has not resolved")
	s.mAsyncFails = s.reg.Counter("ndpcr_gateway_async_failures_total",
		"async-acked saves rolled back because the store drain failed or timed out")
	s.mBackpressure = s.reg.Counter("ndpcr_gateway_backpressure_rejections_total",
		"async saves rejected because NVM admission control timed out")
	s.mRestoreFallbacks = s.reg.Counter("ndpcr_gateway_restore_fallbacks_total",
		"restart lines abandoned for an older line while serving restore/resume requests")
	if cfg.DrainSlots > 0 {
		s.sched = newDrainScheduler(cfg.DrainSlots)
		s.reg.GaugeFunc("ndpcr_gateway_drain_slots_in_use",
			"NDP drain slots currently held, of the DrainSlots pool",
			func() float64 { return float64(s.sched.InUse()) })
		s.reg.GaugeFunc("ndpcr_gateway_drain_queue_depth",
			"drains parked waiting for a slot under QoS scheduling",
			func() float64 { return float64(s.sched.Queued()) })
	}
	s.reg.GaugeFunc("ndpcr_gateway_sessions",
		"live per-(namespace,run,rank) node sessions", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ns/{ns}/runs/{run}/checkpoints", s.wrap("save", s.handleSave))
	s.mux.HandleFunc("GET /v1/ns/{ns}/runs/{run}/checkpoints", s.wrap("list", s.handleList))
	s.mux.HandleFunc("GET /v1/ns/{ns}/runs/{run}/checkpoints/{id}", s.wrap("load", s.handleLoad))
	s.mux.HandleFunc("GET /v1/ns/{ns}/runs/{run}/checkpoints/{id}/durability", s.wrap("durability", s.handleDurability))
	s.mux.HandleFunc("DELETE /v1/ns/{ns}/runs/{run}/checkpoints/{id}", s.wrap("delete", s.handleDelete))
	s.mux.HandleFunc("GET /v1/ns/{ns}/runs/{run}/resume", s.wrap("resume", s.handleResume))
	s.mux.HandleFunc("POST /v1/ns/{ns}/runs/{run}/restore", s.wrap("restore", s.handleRestore))
	s.mux.Handle("GET /metrics", metrics.Handler(s.reg))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return s, nil
}

// Metrics returns the registry the gateway (and its sessions) report into.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is a typed request failure: an HTTP status plus a stable
// machine-readable code and a human message.
type apiError struct {
	status int
	code   string
	msg    string
}

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// wrap is the common front half of every API handler: shutdown gating,
// bearer-token auth, namespace authorization, rate limiting, in-flight
// caps, fault injection, and metrics. Handlers behind it only do the
// operation.
func (s *Server) wrap(op string, fn func(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError) http.HandlerFunc {
	mReqs := s.reg.Counter(fmt.Sprintf("ndpcr_gateway_requests_total{op=%q}", op),
		"API requests served, by operation")
	mSecs := s.reg.Histogram(fmt.Sprintf("ndpcr_gateway_request_seconds{op=%q}", op),
		"API request latency, by operation", metrics.UnitSeconds)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mReqs.Inc()
		s.mInflight.Inc()
		defer s.mInflight.Dec()
		defer mSecs.ObserveSince(start)

		if !s.enterRequest() {
			s.fail(w, errf(http.StatusServiceUnavailable, "shutting_down", "gateway is draining for shutdown"))
			return
		}
		defer s.leaveRequest()

		st, aerr := s.authenticate(r)
		if aerr != nil {
			s.mAuthFailures.Inc()
			s.fail(w, aerr)
			return
		}
		s.reg.Counter(fmt.Sprintf("ndpcr_gateway_tenant_requests_total{tenant=%q}", st.Name),
			"API requests served, by tenant").Inc()

		if ns := r.PathValue("ns"); !st.allowed[ns] {
			s.fail(w, errf(http.StatusForbidden, "namespace_forbidden",
				"tenant %q may not access namespace %q", st.Name, ns))
			return
		}
		if !st.takeToken(s.now()) {
			s.mRateRejects.Inc()
			s.fail(w, errf(http.StatusTooManyRequests, "rate_limited",
				"tenant %q exceeded %g requests/s", st.Name, st.Rate.PerSec))
			return
		}
		if !st.beginRequest() {
			s.quotaReject("inflight")
			s.fail(w, errf(http.StatusTooManyRequests, "inflight_limit",
				"tenant %q has %d requests in flight (limit)", st.Name, st.Quota.MaxInFlight))
			return
		}
		defer st.endRequest()

		if d, ok := s.cfg.Injector.Decide(faultinject.SiteGatewayFront, faultinject.AnyRank); ok {
			s.mFaults.Inc()
			if d.Mode == faultinject.ModeStall {
				s.cfg.Injector.StallCtx(r.Context(), d)
			} else {
				s.fail(w, errf(http.StatusInternalServerError, "injected_fault",
					"injected %s fault at gateway.handler", d.Mode))
				return
			}
		}

		if err := fn(w, r, st); err != nil {
			if r.Context().Err() != nil {
				s.mCanceled.Inc()
			}
			s.fail(w, err)
		}
	}
}

// fail writes an apiError response and counts it by code.
func (s *Server) fail(w http.ResponseWriter, e *apiError) {
	s.reg.Counter(fmt.Sprintf("ndpcr_gateway_request_errors_total{code=%q}", e.code),
		"API requests rejected or failed, by error code").Inc()
	writeJSON(w, e.status, map[string]string{"error": e.code, "message": e.msg})
}

// quotaReject counts one quota rejection of the given kind.
func (s *Server) quotaReject(kind string) {
	s.reg.Counter(fmt.Sprintf("ndpcr_gateway_quota_rejections_total{kind=%q}", kind),
		"requests rejected by a tenant quota, by exhausted dimension").Inc()
}

// tenantBytes counts payload bytes moved for a tenant (dir in|out).
func (s *Server) tenantBytes(st *tenantState, dir string, n int) {
	s.reg.Counter(fmt.Sprintf("ndpcr_gateway_tenant_bytes_total{tenant=%q,dir=%q}", st.Name, dir),
		"checkpoint payload bytes moved, by tenant and direction").Add(uint64(n))
}

func (s *Server) authenticate(r *http.Request) (*tenantState, *apiError) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return nil, errf(http.StatusUnauthorized, "unauthorized", "missing bearer token")
	}
	st, ok := s.byToken[auth[len(prefix):]]
	if !ok {
		return nil, errf(http.StatusUnauthorized, "unauthorized", "unknown bearer token")
	}
	return st, nil
}

// enterRequest admits a request unless the gateway is draining.
func (s *Server) enterRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

func (s *Server) leaveRequest() {
	s.mu.Lock()
	s.active--
	if s.draining && s.active == 0 && s.drainDone != nil {
		close(s.drainDone)
		s.drainDone = nil
	}
	s.mu.Unlock()
}

// Shutdown stops admitting requests, waits (bounded by ctx) for the
// in-flight ones to finish and for async-acked saves to resolve, then
// closes every session node. It returns ctx's error when the drain did not
// finish in time; sessions are closed either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var done chan struct{}
	if s.active > 0 {
		if s.drainDone == nil {
			s.drainDone = make(chan struct{})
		}
		done = s.drainDone
	}
	s.mu.Unlock()

	var err error
	if done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	// Async-acked saves still propagating: give their background waits the
	// remaining budget before tearing sessions down. Closing a node stops
	// its engine, which resolves any stragglers through ndp.ErrStopped.
	asyncDone := make(chan struct{})
	go func() {
		s.asyncWG.Wait()
		close(asyncDone)
	}()
	select {
	case <-asyncDone:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	sessions := s.sessions
	s.sessions = make(map[sessKey]*node.Node)
	s.mu.Unlock()
	for _, n := range sessions {
		n.Close()
	}
	return err
}

// session returns (creating if needed) the node runtime serving one
// (namespace, run, rank). A fresh session resynchronizes its checkpoint
// counter from the store's newest ID, so a restarted gateway appends to a
// run instead of overwriting it. Under QoS scheduling the session's drains
// are gated on the creating tenant's weight (a namespace shared across
// tenants drains at its first user's weight — a deliberate simplification).
func (s *Server) session(ctx context.Context, job string, rank int, st *tenantState) (*node.Node, error) {
	key := sessKey{job: job, rank: rank}
	s.mu.Lock()
	if n, ok := s.sessions[key]; ok {
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()

	var gate func(ctx context.Context) (func(), error)
	if s.sched != nil {
		tenant, weight := st.Name, st.DrainWeight
		gate = func(ctx context.Context) (func(), error) {
			return s.sched.Acquire(ctx, tenant, weight)
		}
	}
	// Build outside the lock: node.New allocates NVM and spins up the NDP
	// engine. A racing builder for the same key loses and closes its copy.
	n, err := node.New(node.Config{
		Job:               job,
		Rank:              rank,
		Store:             s.cfg.Store,
		Codec:             s.cfg.Codec,
		BlockSize:         s.cfg.BlockSize,
		DrainWindow:       s.cfg.DrainWindow,
		NVMCapacity:       s.cfg.SessionNVM,
		Metrics:           s.reg,
		MaxDrainAttempts:  s.cfg.MaxDrainAttempts,
		DrainRetryBackoff: s.cfg.DrainRetryBackoff,
		DrainGate:         gate,
	})
	if err != nil {
		return nil, err
	}
	if latest, ok, err := s.cfg.Store.Latest(ctx, job, rank); err != nil {
		n.Close()
		return nil, fmt.Errorf("resync from store: %w", err)
	} else if ok {
		n.ResyncNextID(latest + 1)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.sessions[key]; ok {
		go n.Close()
		return existing, nil
	}
	if s.draining {
		go n.Close()
		return nil, errors.New("gateway: shutting down")
	}
	s.sessions[key] = n
	return n, nil
}

// reqScope extracts the common request scope: namespace, run, rank, and
// the derived store job key.
func reqScope(r *http.Request) (job string, rank int, aerr *apiError) {
	ns, run := r.PathValue("ns"), r.PathValue("run")
	if ns == "" || run == "" {
		return "", 0, errf(http.StatusBadRequest, "bad_request", "namespace and run are required")
	}
	rank = 0
	if v := r.URL.Query().Get("rank"); v != "" {
		var err error
		if rank, err = strconv.Atoi(v); err != nil || rank < 0 {
			return "", 0, errf(http.StatusBadRequest, "bad_request", "invalid rank %q", v)
		}
	}
	return JobKey(ns, run), rank, nil
}

// mapStoreErr translates pipeline errors into API errors.
func mapStoreErr(err error, what string) *apiError {
	switch {
	case errors.Is(err, iostore.ErrNotFound), errors.Is(err, node.ErrNoCheckpoint),
		errors.Is(err, cluster.ErrNoRestartLine):
		return errf(http.StatusNotFound, "not_found", "%s: %v", what, err)
	case errors.Is(err, cluster.ErrNotPartitioned):
		return errf(http.StatusConflict, "not_partitioned", "%s: %v", what, err)
	case errors.Is(err, elastic.ErrBadGeometry):
		return errf(http.StatusBadRequest, "bad_request", "%s: %v", what, err)
	case errors.Is(err, cluster.ErrLevelUnavailable):
		return errf(http.StatusServiceUnavailable, "level_unavailable", "%s: %v", what, err)
	case errors.Is(err, context.Canceled):
		return errf(http.StatusServiceUnavailable, "canceled", "%s: request canceled", what)
	default:
		return errf(http.StatusInternalServerError, "internal", "%s: %v", what, err)
	}
}

// handleSave commits one checkpoint snapshot (the request body). In the
// default synchronous mode it waits for the NDP drain to land the
// checkpoint in the global store before acknowledging: a 200 means durable
// at the I/O level, not merely accepted, and a failed or timed-out drain
// rolls the commit back so the run's checkpoint sequence holds only durable
// IDs. In async mode (Config.AsyncAck or ?durable=nvm) the save returns 202
// as soon as the snapshot is NVM-durable — under admission control, so a
// full device blocks (bounded by DrainTimeout) instead of failing — and the
// drain to the store resolves in the background: the acked ID either
// reaches store durability or is rolled back and reported failed through
// the durability endpoint, never silently lost.
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, rank, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	step := 0
	if v := r.URL.Query().Get("step"); v != "" {
		var err error
		if step, err = strconv.Atoi(v); err != nil {
			return errf(http.StatusBadRequest, "bad_request", "invalid step %q", v)
		}
	}
	async := s.cfg.AsyncAck
	switch v := r.URL.Query().Get("durable"); v {
	case "":
	case "nvm":
		async = true
	case "store":
		async = false
	default:
		return errf(http.StatusBadRequest, "bad_request",
			"invalid durable mode %q (want nvm or store)", v)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errf(http.StatusBadRequest, "bad_request", "reading snapshot: %v", err)
	}
	if len(body) == 0 {
		return errf(http.StatusBadRequest, "bad_request", "empty snapshot")
	}

	release, kind, ok := st.reserve(int64(len(body)))
	if !ok {
		s.quotaReject(kind)
		return errf(http.StatusForbidden, "quota_"+kind,
			"tenant %q would exceed its %s quota", st.Name, kind)
	}

	n, err := s.session(r.Context(), job, rank, st)
	if err != nil {
		release()
		return mapStoreErr(err, "session")
	}
	meta := node.Metadata{Job: job, Rank: rank, Step: step}
	// A snapshot framed by the client (elastic.Encode) self-describes its
	// shard count; stamping it into the checkpoint metadata is what makes
	// the run restorable onto a different rank count later.
	if elastic.IsFrame(body) {
		if shards, err := elastic.ShardCount(body); err == nil {
			meta.Shards = shards
		}
	}

	if async {
		actx, cancel := context.WithTimeout(r.Context(), s.cfg.DrainTimeout)
		id, err := n.CommitAsync(actx, body, meta)
		cancel()
		if err != nil {
			release()
			if errors.Is(err, nvm.ErrBackpressure) {
				s.mBackpressure.Inc()
				return errf(http.StatusTooManyRequests, "backpressure",
					"NVM admission wait expired (drain-locked residents hold the device): %v", err)
			}
			return mapStoreErr(err, "commit")
		}
		s.finishAsync(n, id, release)
		s.tenantBytes(st, "in", len(body))
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id": id, "bytes": len(body), "step": step, "durable": "nvm",
		})
		return nil
	}

	id, err := n.Commit(body, meta)
	if err != nil {
		release()
		return mapStoreErr(err, "commit")
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DrainTimeout)
	defer cancel()
	var werr error
	if n.Engine() != nil {
		werr = n.WaitDurableCtx(ctx, id, ndp.LevelStore)
	}
	if werr != nil && !n.DurableAt(id, ndp.LevelStore) {
		// Not durable at the I/O level: roll the checkpoint back rather
		// than acknowledge state the store may not hold. The DurableAt
		// re-check above keeps a drain that completed in the same instant
		// the wait aborted (engine stop, ctx expiry) acknowledged instead
		// of rolled back.
		n.DiscardCommit(id)
		release()
		switch {
		case r.Context().Err() != nil:
			return errf(http.StatusServiceUnavailable, "canceled",
				"client went away before checkpoint %d drained; rolled back", id)
		case errors.Is(werr, ndp.ErrStopped):
			return errf(http.StatusServiceUnavailable, "shutting_down",
				"drain engine stopped before checkpoint %d reached the store; rolled back", id)
		case errors.Is(werr, ndp.ErrCheckpointFailed):
			return errf(http.StatusInternalServerError, "drain_failed",
				"checkpoint %d permanently failed to drain: %v; rolled back", id, werr)
		default:
			return errf(http.StatusGatewayTimeout, "drain_timeout",
				"checkpoint %d not drained within %s; rolled back", id, s.cfg.DrainTimeout)
		}
	}
	s.evictLocal(n, id)

	s.tenantBytes(st, "in", len(body))
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "bytes": len(body), "step": step, "durable": "store"})
	return nil
}

// finishAsync resolves one async-acked save in the background: wait
// (bounded by AsyncDrainTimeout) for store durability, then either trim the
// local restore cache like a synchronous save, or — on permanent drain
// failure, shutdown, or timeout without durability — roll the checkpoint
// back and return its quota, leaving the ID marked failed on the node's
// durability tracker so pollers see an explicit failure, not silence.
func (s *Server) finishAsync(n *node.Node, id uint64, release func()) {
	s.asyncWG.Add(1)
	s.mAsyncPending.Inc()
	go func() {
		defer s.asyncWG.Done()
		defer s.mAsyncPending.Dec()
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.AsyncDrainTimeout)
		defer cancel()
		err := n.WaitDurableCtx(ctx, id, ndp.LevelStore)
		if err == nil || n.DurableAt(id, ndp.LevelStore) {
			s.evictLocal(n, id)
			return
		}
		s.mAsyncFails.Inc()
		n.DiscardCommit(id)
		release()
	}()
}

// handleDurability reports one checkpoint's per-level durability:
// GET .../checkpoints/{id}/durability?rank=N[&wait=LEVEL][&timeout=DUR].
// With wait= it blocks (bounded by timeout, default DrainTimeout) until the
// checkpoint reaches that level or fails. When no session holds the rank
// (e.g. after a gateway restart) the store is consulted directly, so
// store-level truth survives the tracker's loss of state.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, rank, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	id, aerr := parseID(r)
	if aerr != nil {
		return aerr
	}
	s.mu.Lock()
	n := s.sessions[sessKey{job: job, rank: rank}]
	s.mu.Unlock()

	if v := r.URL.Query().Get("wait"); v != "" && n != nil {
		lvl, err := ndp.ParseLevel(v)
		if err != nil {
			return errf(http.StatusBadRequest, "bad_request", "invalid wait level %q", v)
		}
		timeout := s.cfg.DrainTimeout
		if tv := r.URL.Query().Get("timeout"); tv != "" {
			if timeout, err = time.ParseDuration(tv); err != nil || timeout <= 0 {
				return errf(http.StatusBadRequest, "bad_request", "invalid timeout %q", tv)
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		// The wait is advisory — the response below reports whatever state
		// the checkpoint reached, including a failure.
		n.WaitDurableCtx(ctx, id, lvl)
		cancel()
	}

	levels := make(map[string]bool, 4)
	failed := false
	failure := ""
	if n != nil {
		tr := n.Durability()
		for _, lvl := range []ndp.Level{ndp.LevelNVM, ndp.LevelPartner, ndp.LevelErasure, ndp.LevelStore} {
			levels[lvl.String()] = n.DurableAt(id, lvl)
		}
		if err := tr.FailedErr(id); err != nil {
			failed, failure = true, err.Error()
		}
	} else {
		for _, lvl := range []ndp.Level{ndp.LevelNVM, ndp.LevelPartner, ndp.LevelErasure, ndp.LevelStore} {
			levels[lvl.String()] = false
		}
	}
	if !levels[ndp.LevelStore.String()] && !failed {
		// Tracker says not yet store-durable (or no tracker at all): the
		// store itself is the authority for drained objects, e.g. after a
		// gateway restart rebuilt the session with an empty tracker.
		if _, ok, err := s.cfg.Store.Stat(r.Context(), iostore.Key{Job: job, Rank: rank, ID: id}); err == nil && ok {
			levels[ndp.LevelStore.String()] = true
		}
	}
	resp := map[string]any{"id": id, "levels": levels, "failed": failed}
	if failure != "" {
		resp["failure"] = failure
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// evictLocal bounds the session's local-NVM restore cache to RetainLocal
// drained checkpoints.
func (s *Server) evictLocal(n *node.Node, id uint64) {
	if s.cfg.RetainLocal < 0 {
		return
	}
	if keep := uint64(s.cfg.RetainLocal); id > keep {
		n.Device().Discard(id - keep)
	}
}

// handleList reports the checkpoint IDs the store holds for one rank of a
// run, newest last, plus the newest ID for convenience.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, rank, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	ids, err := s.cfg.Store.IDs(r.Context(), job, rank)
	if err != nil {
		return mapStoreErr(err, "list")
	}
	resp := map[string]any{"ids": ids}
	if len(ids) > 0 {
		resp["latest"] = ids[len(ids)-1]
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// serveSnapshot writes a restored checkpoint as the response body with its
// identity in headers.
func (s *Server) serveSnapshot(w http.ResponseWriter, st *tenantState, data []byte, id uint64, meta node.Metadata, level node.Level) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Ndpcr-Checkpoint", strconv.FormatUint(id, 10))
	h.Set("X-Ndpcr-Step", strconv.Itoa(meta.Step))
	h.Set("X-Ndpcr-Level", level.String())
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	s.tenantBytes(st, "out", len(data))
}

func parseID(r *http.Request) (uint64, *apiError) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		return 0, errf(http.StatusBadRequest, "bad_request", "invalid checkpoint id %q", r.PathValue("id"))
	}
	return id, nil
}

// handleLoad restores one specific checkpoint ID.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, rank, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	id, aerr := parseID(r)
	if aerr != nil {
		return aerr
	}
	n, err := s.session(r.Context(), job, rank, st)
	if err != nil {
		return mapStoreErr(err, "session")
	}
	data, meta, level, err := n.RestoreID(r.Context(), id)
	if err != nil {
		return mapStoreErr(err, fmt.Sprintf("restore %d", id))
	}
	s.serveSnapshot(w, st, data, id, meta, level)
	return nil
}

// handleDelete removes one checkpoint and returns its quota to the tenant.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, rank, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	id, aerr := parseID(r)
	if aerr != nil {
		return aerr
	}
	key := iostore.Key{Job: job, Rank: rank, ID: id}
	obj, ok, err := s.cfg.Store.Stat(r.Context(), key)
	if err != nil {
		return mapStoreErr(err, "stat")
	}
	if !ok {
		return errf(http.StatusNotFound, "not_found", "checkpoint %d not found", id)
	}

	// Through the session when one is live (cleans NVM and the NDP's
	// drain state too), straight at the store otherwise.
	s.mu.Lock()
	n := s.sessions[sessKey{job: job, rank: rank}]
	s.mu.Unlock()
	if n != nil {
		err = n.DiscardCommit(id)
	} else {
		err = s.cfg.Store.Delete(r.Context(), key)
	}
	if err != nil {
		return mapStoreErr(err, "delete")
	}
	st.unreserve(obj.OrigSize)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
	return nil
}

// handleResume restores the newest usable checkpoint. With ?ranks=N it is
// a thin wrapper over the restore planner: the identity (N→N) plan member
// for this rank is served from the newest store restart line common to
// ranks [0,N), walking lines newest-to-oldest when one turns out
// unreadable — the same fallback ladder Cluster.Recover walks, with each
// abandoned line counted in ndpcr_gateway_restore_fallbacks_total.
// Without ?ranks= it serves this rank's newest checkpoint.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, rank, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	n, err := s.session(r.Context(), job, rank, st)
	if err != nil {
		return mapStoreErr(err, "session")
	}
	if v := r.URL.Query().Get("ranks"); v != "" {
		ranks, err := strconv.Atoi(v)
		if err != nil || ranks <= 0 || rank >= ranks {
			return errf(http.StatusBadRequest, "bad_request", "invalid ranks %q for rank %d", v, rank)
		}
		lines, lerr := cluster.StoreRestartLines(r.Context(), s.cfg.Store, job, ranks)
		if len(lines) == 0 {
			if lerr != nil {
				return mapStoreErr(lerr, "restart line")
			}
			return errf(http.StatusNotFound, "not_found", "no restart line common to %d ranks", ranks)
		}
		var lastErr error
		for i, line := range lines {
			if i > 0 {
				s.mRestoreFallbacks.Inc()
			}
			data, meta, level, err := n.RestoreID(r.Context(), line)
			if err == nil {
				s.serveSnapshot(w, st, data, line, meta, level)
				return nil
			}
			lastErr = err
			if r.Context().Err() != nil {
				break // the client is gone; older lines won't help it
			}
		}
		return mapStoreErr(lastErr, fmt.Sprintf("restore across %d restart lines", len(lines)))
	}
	data, meta, level, err := n.Restore(r.Context())
	if err != nil {
		return mapStoreErr(err, "resume")
	}
	// The restored ID travels in metadata-adjacent headers; Restore picks
	// the newest, which the store's Latest identifies.
	id, _, _ := s.cfg.Store.Latest(r.Context(), job, rank)
	s.serveSnapshot(w, st, data, id, meta, level)
	return nil
}
