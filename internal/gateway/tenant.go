package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Quota bounds one tenant's footprint. Zero fields are unlimited.
type Quota struct {
	// MaxBytes caps the original (pre-compression) bytes the tenant may
	// have resident across all its namespaces.
	MaxBytes int64 `json:"max_bytes"`
	// MaxCheckpoints caps how many checkpoints the tenant may retain.
	MaxCheckpoints int `json:"max_checkpoints"`
	// MaxInFlight caps the tenant's concurrent requests.
	MaxInFlight int `json:"max_in_flight"`
}

// Rate is a token-bucket request rate limit. A zero PerSec disables
// limiting.
type Rate struct {
	// PerSec is the sustained requests-per-second refill rate.
	PerSec float64 `json:"per_sec"`
	// Burst is the bucket depth (defaults to max(1, ceil(PerSec))).
	Burst int `json:"burst"`
}

// Tenant is one authenticated principal of the gateway.
type Tenant struct {
	// Name identifies the tenant in metrics and logs.
	Name string `json:"name"`
	// Token is the bearer token presented in the Authorization header.
	Token string `json:"token"`
	// Namespaces lists the namespaces the tenant may touch; empty grants
	// exactly its own name.
	Namespaces []string `json:"namespaces,omitempty"`
	Quota      Quota    `json:"quota"`
	Rate       Rate     `json:"rate"`
	// DrainWeight is the tenant's share of the gateway's drain slots under
	// QoS scheduling (Config.DrainSlots). Zero or negative means 1.
	DrainWeight float64 `json:"drain_weight,omitempty"`
}

// LoadTenants reads a JSON token file: an array of Tenant objects. Every
// tenant needs a non-empty name and token; names and tokens must be
// unique (a shared token would make per-tenant accounting ambiguous).
func LoadTenants(path string) ([]Tenant, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: token file: %w", err)
	}
	var tenants []Tenant
	if err := json.Unmarshal(raw, &tenants); err != nil {
		return nil, fmt.Errorf("gateway: token file %s: %w", path, err)
	}
	if err := ValidateTenants(tenants); err != nil {
		return nil, fmt.Errorf("gateway: token file %s: %w", path, err)
	}
	return tenants, nil
}

// ValidateTenants checks the uniqueness and completeness rules LoadTenants
// enforces, for configs assembled in code.
func ValidateTenants(tenants []Tenant) error {
	if len(tenants) == 0 {
		return fmt.Errorf("no tenants defined")
	}
	names := make(map[string]bool, len(tenants))
	tokens := make(map[string]bool, len(tenants))
	for i, t := range tenants {
		if t.Name == "" || t.Token == "" {
			return fmt.Errorf("tenant %d: name and token are required", i)
		}
		if names[t.Name] {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		if tokens[t.Token] {
			return fmt.Errorf("tenant %q: token already in use", t.Name)
		}
		names[t.Name] = true
		tokens[t.Token] = true
	}
	return nil
}

// tenantState is a tenant plus its live accounting: resident usage, in-
// flight requests, and the rate-limit bucket. Usage is accounted over the
// gateway instance's lifetime, seeded from nothing — a restarted gateway
// re-learns usage as tenants write and delete (a deliberate simplification;
// a store-scan on startup would close the gap).
type tenantState struct {
	Tenant
	allowed map[string]bool // namespace -> permitted

	mu          sync.Mutex
	usedBytes   int64
	checkpoints int
	inflight    int
	tokens      float64   // rate-limit bucket level
	lastRefill  time.Time // last bucket refill instant
}

func newTenantState(t Tenant, now time.Time) *tenantState {
	st := &tenantState{Tenant: t, allowed: make(map[string]bool)}
	if len(t.Namespaces) == 0 {
		st.allowed[t.Name] = true
	}
	for _, ns := range t.Namespaces {
		st.allowed[ns] = true
	}
	if st.Rate.PerSec > 0 && st.Rate.Burst <= 0 {
		st.Rate.Burst = int(st.Rate.PerSec)
		if st.Rate.Burst < 1 {
			st.Rate.Burst = 1
		}
	}
	st.tokens = float64(st.Rate.Burst)
	st.lastRefill = now
	return st
}

// takeToken draws one request from the rate bucket, refilling for the
// elapsed time first. It reports false when the bucket is empty.
func (st *tenantState) takeToken(now time.Time) bool {
	if st.Rate.PerSec <= 0 {
		return true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	elapsed := now.Sub(st.lastRefill).Seconds()
	if elapsed > 0 {
		st.tokens += elapsed * st.Rate.PerSec
		if max := float64(st.Rate.Burst); st.tokens > max {
			st.tokens = max
		}
		st.lastRefill = now
	}
	if st.tokens < 1 {
		return false
	}
	st.tokens--
	return true
}

// beginRequest claims an in-flight slot; endRequest releases it.
func (st *tenantState) beginRequest() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Quota.MaxInFlight > 0 && st.inflight >= st.Quota.MaxInFlight {
		return false
	}
	st.inflight++
	return true
}

func (st *tenantState) endRequest() {
	st.mu.Lock()
	st.inflight--
	st.mu.Unlock()
}

// reserve claims quota for one incoming checkpoint of size bytes before
// any work happens; the returned release undoes the claim if the save
// later fails. kind names the exhausted dimension on rejection.
func (st *tenantState) reserve(bytes int64) (release func(), kind string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Quota.MaxBytes > 0 && st.usedBytes+bytes > st.Quota.MaxBytes {
		return nil, "bytes", false
	}
	if st.Quota.MaxCheckpoints > 0 && st.checkpoints+1 > st.Quota.MaxCheckpoints {
		return nil, "checkpoints", false
	}
	st.usedBytes += bytes
	st.checkpoints++
	return func() { st.unreserve(bytes) }, "", true
}

// unreserve returns quota claimed by reserve (failed save or delete).
func (st *tenantState) unreserve(bytes int64) {
	st.mu.Lock()
	st.usedBytes -= bytes
	if st.usedBytes < 0 {
		st.usedBytes = 0
	}
	if st.checkpoints > 0 {
		st.checkpoints--
	}
	st.mu.Unlock()
}
