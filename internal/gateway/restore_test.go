package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"ndpcr/internal/cluster/elastic"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

// saveFramed checkpoints a framed (partitionable) snapshot for each of n
// ranks and returns the merged application state for later comparison.
func saveFramed(t *testing.T, c *Client, ns, run string, n, step int) []byte {
	t.Helper()
	frames := make([][]byte, n)
	for rank := 0; rank < n; rank++ {
		count := 2 + rank%3
		shards := make([][]byte, count)
		for j := range shards {
			shards[j] = []byte(fmt.Sprintf("r%02d-s%02d-step%02d|%s", rank, j, step,
				bytes.Repeat([]byte{byte(rank*17 + j + step)}, 24)))
		}
		frames[rank] = elastic.Encode(shards)
		if _, err := c.Save(context.Background(), ns, run, rank, step, frames[rank]); err != nil {
			t.Fatalf("save rank %d: %v", rank, err)
		}
	}
	merged, err := elastic.MergedBytes(frames)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

func TestRestorePlanAndMembers(t *testing.T) {
	const n, m = 4, 3
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()

	want := saveFramed(t, c, "acme", "elastic", n, 1)

	plan, err := c.PlanRestore(ctx, "acme", "elastic", n, m, 0)
	if err != nil {
		t.Fatalf("PlanRestore: %v", err)
	}
	if plan.Line == 0 || plan.SourceRanks != n || plan.TargetRanks != m {
		t.Fatalf("plan geometry = %+v", plan)
	}
	if len(plan.Targets) != m {
		t.Fatalf("%d target plans, want %d", len(plan.Targets), m)
	}

	// Execute every member pinned to the planned line; the merged members
	// must reproduce the merged source state byte-identically.
	members := make([][]byte, m)
	for i := 0; i < m; i++ {
		ck, err := c.RestoreMember(ctx, "acme", "elastic", n, m, i, plan.Line)
		if err != nil {
			t.Fatalf("RestoreMember %d: %v", i, err)
		}
		if ck.ID != plan.Line || ck.Step != 1 {
			t.Errorf("member %d id/step = %d/%d, want %d/1", i, ck.ID, ck.Step, plan.Line)
		}
		members[i] = ck.Data
	}
	got, err := elastic.MergedBytes(members)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged member snapshots differ from the checkpointed state")
	}
}

func TestRestoreSameShapeIdentity(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	saveFramed(t, c, "acme", "idrun", 2, 3)
	plan, err := c.PlanRestore(context.Background(), "acme", "idrun", 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Identity {
		t.Error("2→2 plan not marked identity")
	}
}

func TestRestoreOpaqueRejected(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	// Opaque (unframed) snapshots: same-shape restore fine, reshape 409s.
	for rank := 0; rank < 2; rank++ {
		if _, err := c.Save(ctx, "acme", "opq", rank, 1, []byte("opaque state")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.PlanRestore(ctx, "acme", "opq", 2, 2, 0); err != nil {
		t.Fatalf("same-shape plan over opaque snapshots: %v", err)
	}
	_, err := c.PlanRestore(ctx, "acme", "opq", 2, 5, 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "not_partitioned" {
		t.Fatalf("reshape over opaque snapshots: err = %v, want not_partitioned", err)
	}
}

func TestRestoreValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	if _, err := c.PlanRestore(ctx, "acme", "r", 0, 4, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := c.RestoreMember(ctx, "acme", "r", 4, 2, 7, 0); err == nil {
		t.Error("member beyond target_ranks accepted")
	}
}

// TestResumeFallsBackAcrossLines is the regression test for the resume
// bug: with ?ranks= the gateway used to try only the newest restart line
// and fail outright when it was unreadable, instead of walking older
// lines the way Cluster.Recover does.
func TestResumeFallsBackAcrossLines(t *testing.T) {
	store := iostore.New(nvm.Pacer{})
	_, ts := newTestServer(t, func(cfg *Config) { cfg.Store = store })
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()

	wantOld := saveFramed(t, c, "acme", "fb", 2, 1)
	saveFramed(t, c, "acme", "fb", 2, 2)

	// Poison the newest line's objects in the store: present in the
	// inventory (so line 2 stays the newest restart line) but with
	// metadata that fails decode, making the restore itself error.
	// Resume is per-rank, so every rank's object must be poisoned for
	// every rank to fall back.
	job := JobKey("acme", "fb")
	for rank := 0; rank < 2; rank++ {
		if err := store.Put(ctx, iostore.Object{
			Key:      iostore.Key{Job: job, Rank: rank, ID: 2},
			OrigSize: 4,
			Blocks:   [][]byte{[]byte("junk")},
			Meta:     map[string]string{"job": job, "rank": "corrupt", "step": "2", "ckpt": "2"},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Resume through a fresh gateway (no session NVM cache vouching for
	// the poisoned line) — it must fall back to line 1.
	srv2, ts2 := newTestServer(t, func(cfg *Config) { cfg.Store = store })
	c2 := NewClient(ts2.URL, "tok-acme")
	members := make([][]byte, 2)
	for rank := 0; rank < 2; rank++ {
		ck, err := c2.Resume(ctx, "acme", "fb", rank, 2)
		if err != nil {
			t.Fatalf("resume rank %d: %v", rank, err)
		}
		if ck.ID != 1 || ck.Step != 1 {
			t.Fatalf("rank %d resumed id/step %d/%d, want 1/1", rank, ck.ID, ck.Step)
		}
		members[rank] = ck.Data
	}
	got, err := elastic.MergedBytes(members)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantOld) {
		t.Fatal("fallback resume did not serve the older line's state")
	}
	if srv2.mRestoreFallbacks.Value() == 0 {
		t.Error("fallback not counted in ndpcr_gateway_restore_fallbacks_total")
	}
}
