package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ndpcr/internal/cluster"
	"ndpcr/internal/cluster/elastic"
)

// restoreRequest is the POST /restore body: the checkpointed topology, the
// restart topology, and an optional pinned restart line (zero = newest,
// with newest-to-oldest fallback).
type restoreRequest struct {
	Ranks       int    `json:"ranks"`
	TargetRanks int    `json:"target_ranks"`
	Line        uint64 `json:"line,omitempty"`
}

// restoreResponse is the plan-mode response: the chosen line and the full
// source-shard map (which source ranks' shard ranges each target fetches).
type restoreResponse struct {
	Line        uint64               `json:"line"`
	SourceRanks int                  `json:"source_ranks"`
	TargetRanks int                  `json:"target_ranks"`
	TotalShards int                  `json:"total_shards"`
	Identity    bool                 `json:"identity,omitempty"`
	FailedLines []uint64             `json:"failed_lines,omitempty"`
	Targets     []elastic.TargetPlan `json:"targets"`
}

// handleRestore is the elastic restore endpoint:
//
//	POST /v1/ns/{ns}/runs/{run}/restore            — plan mode
//	POST /v1/ns/{ns}/runs/{run}/restore?member=T   — member mode
//
// Plan mode runs the restore planner over the store and returns the typed
// plan (chosen line, source-shard map) without moving any payload bytes.
// Member mode additionally executes target T's slice of the plan — fetches
// the planned shard ranges from the store, re-assembles them — and serves
// the member snapshot the T-th restart rank boots from, with the chosen
// line and step in the usual snapshot headers.
//
// Both modes walk restart lines newest to oldest when no line is pinned:
// a line whose plan or payload turns out unreadable is abandoned (counted
// in ndpcr_gateway_restore_fallbacks_total) in favor of the next-older
// one. Clients restoring many members should plan once and pin the
// returned line so every member restores the same cut.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, st *tenantState) *apiError {
	job, _, aerr := reqScope(r)
	if aerr != nil {
		return aerr
	}
	var req restoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return errf(http.StatusBadRequest, "bad_request", "decoding restore request: %v", err)
	}
	if req.Ranks <= 0 {
		return errf(http.StatusBadRequest, "bad_request", "ranks must be positive, got %d", req.Ranks)
	}
	if req.TargetRanks == 0 {
		req.TargetRanks = req.Ranks
	}
	if req.TargetRanks < 0 {
		return errf(http.StatusBadRequest, "bad_request", "target_ranks must be positive, got %d", req.TargetRanks)
	}
	member := -1
	if v := r.URL.Query().Get("member"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m < 0 || m >= req.TargetRanks {
			return errf(http.StatusBadRequest, "bad_request",
				"invalid member %q for %d targets", v, req.TargetRanks)
		}
		member = m
	}

	// The fallback ladder: the pinned line alone, or every store restart
	// line newest first.
	var lines []uint64
	if req.Line != 0 {
		lines = []uint64{req.Line}
	} else {
		var lerr error
		lines, lerr = cluster.StoreRestartLines(r.Context(), s.cfg.Store, job, req.Ranks)
		if len(lines) == 0 {
			if lerr != nil {
				return mapStoreErr(lerr, "restart line")
			}
			return errf(http.StatusNotFound, "not_found", "no restart line common to %d ranks", req.Ranks)
		}
	}

	var failed []uint64
	var lastErr error
	for i, line := range lines {
		if i > 0 {
			s.mRestoreFallbacks.Inc()
		}
		plan, err := cluster.PlanRestore(r.Context(), s.cfg.Store, job, cluster.RestoreSpec{
			SourceRanks: req.Ranks, TargetRanks: req.TargetRanks, Line: line,
		})
		if err != nil {
			lastErr = err
			failed = append(failed, line)
			continue
		}
		if member < 0 {
			writeJSON(w, http.StatusOK, restoreResponse{
				Line:        plan.Line,
				SourceRanks: plan.SourceRanks,
				TargetRanks: plan.TargetRanks,
				TotalShards: plan.TotalShards,
				Identity:    plan.Identity,
				FailedLines: failed,
				Targets:     plan.Targets,
			})
			return nil
		}
		// Member mode: execute this target's fetches through a session node
		// keyed by the member's rank — store-only, since the member's future
		// NVM does not hold the source job's state.
		n, serr := s.session(r.Context(), job, member, st)
		if serr != nil {
			return mapStoreErr(serr, "session")
		}
		data, meta, level, err := n.RestoreElastic(r.Context(), plan.Targets[member], true)
		if err != nil {
			lastErr = err
			failed = append(failed, line)
			continue
		}
		s.serveSnapshot(w, st, data, plan.Line, meta, level)
		return nil
	}
	return mapStoreErr(lastErr, fmt.Sprintf("restore across %d restart lines", len(lines)))
}
