package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/faultinject"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

func testTenants() []Tenant {
	return []Tenant{
		{Name: "acme", Token: "tok-acme"},
		{Name: "umbra", Token: "tok-umbra"},
	}
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Store:        iostore.New(nvm.Pacer{}),
		Tenants:      testTenants(),
		DrainTimeout: 10 * time.Second,
	}
	if c, err := compress.Lookup("gzip", 1); err == nil {
		cfg.Codec = c
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return srv, ts
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()

	payload := bytes.Repeat([]byte("state-v1 "), 4096)
	id, err := c.Save(ctx, "acme", "run1", 0, 7, payload)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if id != 1 {
		t.Fatalf("first checkpoint id = %d, want 1", id)
	}

	got, err := c.Load(ctx, "acme", "run1", 0, id)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got.Data, payload) {
		t.Fatalf("loaded %d bytes, want %d matching bytes", len(got.Data), len(payload))
	}
	if got.Step != 7 || got.ID != id {
		t.Fatalf("loaded id/step = %d/%d, want %d/7", got.ID, got.Step, id)
	}

	ids, err := c.List(ctx, "acme", "run1", 0)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = %v, want [%d]", ids, id)
	}

	cp, err := c.Resume(ctx, "acme", "run1", 0, 0)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !bytes.Equal(cp.Data, payload) {
		t.Fatal("Resume returned wrong payload")
	}
}

func TestSaveIsDurableBeforeAck(t *testing.T) {
	store := iostore.New(nvm.Pacer{})
	_, ts := newTestServer(t, func(c *Config) { c.Store = store })
	c := NewClient(ts.URL, "tok-acme")

	id, err := c.Save(context.Background(), "acme", "r", 0, 1, []byte("must be drained"))
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	// The ack means the object is already in the global store — no
	// waiting, no retries.
	key := iostore.Key{Job: JobKey("acme", "r"), Rank: 0, ID: id}
	if _, ok, err := store.Stat(context.Background(), key); err != nil || !ok {
		t.Fatalf("checkpoint %d not in store at ack time (ok=%v err=%v)", id, ok, err)
	}
}

func TestAuthRequired(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	for _, token := range []string{"", "tok-wrong"} {
		c := NewClient(ts.URL, token)
		_, err := c.Save(context.Background(), "acme", "r", 0, 0, []byte("x"))
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusUnauthorized || ae.Code != "unauthorized" {
			t.Fatalf("token %q: err = %v, want 401 unauthorized", token, err)
		}
	}
	if got := srv.Metrics().Counter("ndpcr_gateway_auth_failures_total", "").Value(); got != 2 {
		t.Fatalf("auth_failures_total = %d, want 2", got)
	}
}

func TestNamespaceForbidden(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	_, err := c.Save(context.Background(), "umbra", "r", 0, 0, []byte("x"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusForbidden || ae.Code != "namespace_forbidden" {
		t.Fatalf("err = %v, want 403 namespace_forbidden", err)
	}
}

func TestQuotaBytesRejected(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.Tenants = []Tenant{{Name: "acme", Token: "tok-acme", Quota: Quota{MaxBytes: 100}}}
	})
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	if _, err := c.Save(ctx, "acme", "r", 0, 0, bytes.Repeat([]byte("a"), 80)); err != nil {
		t.Fatalf("first save within quota: %v", err)
	}
	_, err := c.Save(ctx, "acme", "r", 0, 1, bytes.Repeat([]byte("b"), 80))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusForbidden || ae.Code != "quota_bytes" {
		t.Fatalf("err = %v, want 403 quota_bytes", err)
	}
	if got := srv.Metrics().Counter(`ndpcr_gateway_quota_rejections_total{kind="bytes"}`, "").Value(); got != 1 {
		t.Fatalf("quota_rejections_total{bytes} = %d, want 1", got)
	}
	// Deleting returns the quota: the rejected save now fits.
	if err := c.Delete(ctx, "acme", "r", 0, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Save(ctx, "acme", "r", 0, 1, bytes.Repeat([]byte("b"), 80)); err != nil {
		t.Fatalf("save after delete should fit again: %v", err)
	}
}

func TestQuotaCheckpointsRejected(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Tenants = []Tenant{{Name: "acme", Token: "tok-acme", Quota: Quota{MaxCheckpoints: 2}}}
	})
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	for step := 0; step < 2; step++ {
		if _, err := c.Save(ctx, "acme", "r", 0, step, []byte("x")); err != nil {
			t.Fatalf("save %d: %v", step, err)
		}
	}
	_, err := c.Save(ctx, "acme", "r", 0, 2, []byte("x"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "quota_checkpoints" {
		t.Fatalf("err = %v, want quota_checkpoints", err)
	}
}

func TestRateLimited(t *testing.T) {
	base := time.Unix(1700000000, 0)
	clock := base
	srv, ts := newTestServer(t, func(c *Config) {
		c.Tenants = []Tenant{{Name: "acme", Token: "tok-acme", Rate: Rate{PerSec: 1, Burst: 2}}}
		c.Now = func() time.Time { return clock }
	})
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.List(ctx, "acme", "r", 0); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err := c.List(ctx, "acme", "r", 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Code != "rate_limited" {
		t.Fatalf("err = %v, want 429 rate_limited", err)
	}
	if got := srv.Metrics().Counter("ndpcr_gateway_rate_limit_rejections_total", "").Value(); got != 1 {
		t.Fatalf("rate_limit_rejections_total = %d, want 1", got)
	}
	// The bucket refills with time.
	clock = base.Add(3 * time.Second)
	if _, err := c.List(ctx, "acme", "r", 0); err != nil {
		t.Fatalf("request after refill: %v", err)
	}
}

func TestNotFoundAndBadRequest(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()

	_, err := c.Load(ctx, "acme", "r", 0, 42)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("load missing: err = %v, want 404", err)
	}
	_, err = c.Resume(ctx, "acme", "r", 0, 0)
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("resume empty run: err = %v, want 404", err)
	}
	_, err = c.Save(ctx, "acme", "r", 0, 0, nil)
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("empty save: err = %v, want 400", err)
	}
	resp, derr := c.do(ctx, http.MethodGet, ts.URL+"/v1/ns/acme/runs/r/checkpoints/zero?rank=0", nil)
	if derr == nil {
		resp.Body.Close()
	}
	if !errors.As(derr, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad id: err = %v, want 400", derr)
	}
}

func TestResumeRestartLineAcrossRanks(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()

	// Rank 0 reaches checkpoint 3; rank 1 only 2: the newest line common
	// to both is 2.
	for rank, steps := range map[int]int{0: 3, 1: 2} {
		for step := 1; step <= steps; step++ {
			payload := []byte(fmt.Sprintf("rank%d-step%d", rank, step))
			if _, err := c.Save(ctx, "acme", "mpi", rank, step, payload); err != nil {
				t.Fatalf("save rank %d step %d: %v", rank, step, err)
			}
		}
	}
	for rank := 0; rank < 2; rank++ {
		cp, err := c.Resume(ctx, "acme", "mpi", rank, 2)
		if err != nil {
			t.Fatalf("resume rank %d: %v", rank, err)
		}
		if cp.ID != 2 {
			t.Fatalf("rank %d resumed checkpoint %d, want restart line 2", rank, cp.ID)
		}
		want := fmt.Sprintf("rank%d-step2", rank)
		if string(cp.Data) != want {
			t.Fatalf("rank %d resumed %q, want %q", rank, cp.Data, want)
		}
	}
}

func TestSessionResyncAfterGatewayRestart(t *testing.T) {
	store := iostore.New(nvm.Pacer{})
	_, ts := newTestServer(t, func(c *Config) { c.Store = store })
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	for step := 1; step <= 3; step++ {
		if _, err := c.Save(ctx, "acme", "r", 0, step, []byte("x")); err != nil {
			t.Fatalf("save %d: %v", step, err)
		}
	}
	ts.Close()

	// A second gateway over the same store must append, not overwrite.
	_, ts2 := newTestServer(t, func(c *Config) { c.Store = store })
	c2 := NewClient(ts2.URL, "tok-acme")
	id, err := c2.Save(ctx, "acme", "r", 0, 4, []byte("y"))
	if err != nil {
		t.Fatalf("save on restarted gateway: %v", err)
	}
	if id != 4 {
		t.Fatalf("restarted gateway assigned id %d, want 4 (resume after 3)", id)
	}
}

func TestGracefulShutdownDrainsAndRejects(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	ctx := context.Background()
	if _, err := c.Save(ctx, "acme", "r", 0, 0, []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	_, err := c.List(ctx, "acme", "r", 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.Code != "shutting_down" {
		t.Fatalf("request after shutdown: err = %v, want 503 shutting_down", err)
	}
}

func TestInjectedFault(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.Injector = faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteGatewayFront, Rank: faultinject.AnyRank, Count: 1,
		})
	})
	c := NewClient(ts.URL, "tok-acme")
	_, err := c.List(context.Background(), "acme", "r", 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "injected_fault" {
		t.Fatalf("err = %v, want injected_fault", err)
	}
	if got := srv.Metrics().Counter("ndpcr_gateway_faults_injected_total", "").Value(); got != 1 {
		t.Fatalf("faults_injected_total = %d, want 1", got)
	}
	// The schedule fired once; the next request sails through.
	if _, err := c.List(context.Background(), "acme", "r", 0); err != nil {
		t.Fatalf("request after fault: %v", err)
	}
}

func TestLoadTenantsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens.json")
	good := `[
		{"name": "acme", "token": "t1", "quota": {"max_bytes": 1048576}, "rate": {"per_sec": 100}},
		{"name": "umbra", "token": "t2", "namespaces": ["umbra", "shared"]}
	]`
	if err := os.WriteFile(path, []byte(good), 0o600); err != nil {
		t.Fatal(err)
	}
	tenants, err := LoadTenants(path)
	if err != nil {
		t.Fatalf("LoadTenants: %v", err)
	}
	if len(tenants) != 2 || tenants[0].Quota.MaxBytes != 1048576 || len(tenants[1].Namespaces) != 2 {
		t.Fatalf("tenants = %+v", tenants)
	}

	for name, bad := range map[string]string{
		"dup-token": `[{"name":"a","token":"t"},{"name":"b","token":"t"}]`,
		"dup-name":  `[{"name":"a","token":"t1"},{"name":"a","token":"t2"}]`,
		"no-token":  `[{"name":"a"}]`,
		"empty":     `[]`,
		"not-json":  `{`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTenants(path); err == nil {
			t.Fatalf("%s: accepted invalid token file", name)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := NewClient(ts.URL, "tok-acme")
	if _, err := c.Save(context.Background(), "acme", "r", 0, 0, []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{"ndpcr_gateway_requests_total", "ndpcr_gateway_request_seconds"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("/metrics missing %s; got:\n%s", want, buf.String())
		}
	}
}
