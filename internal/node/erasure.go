package node

import (
	"fmt"
	"sync"

	"ndpcr/internal/node/nvm"
)

// Erasure-set level (§3.4): between the partner copy and global I/O sits a
// redundancy set — each rank's checkpoint is Reed-Solomon encoded into
// shards striped across nodes *outside* its own group, so losing a whole
// node group (which takes out both the local copies and the in-group
// partner copies) still recovers from surviving shards at NVM speed
// instead of falling back to the global store. The cluster layer owns the
// codec and shard routing; this file holds the per-node shard region and
// the restore hook the cluster installs.

// ErasureSet is the cluster-side view a node consults when recovering from
// the erasure level. ShardIDs lists checkpoint IDs for which enough shards
// survive to reconstruct the given rank, ascending; Reconstruct rebuilds
// one of them, digest-verified.
type ErasureSet interface {
	ShardIDs(rank int) []uint64
	Reconstruct(rank int, id uint64) ([]byte, Metadata, error)
}

// erasureRegion lazily allocates the device that stores other ranks'
// erasure shards, exactly like the partner region: same capacity and
// pacing, a distinct region of the node's NVM.
type erasureRegion struct {
	once sync.Once
	dev  *nvm.Device
	err  error
}

func (n *Node) erasureDevice() (*nvm.Device, error) {
	n.erasure.once.Do(func() {
		n.erasure.dev, n.erasure.err = nvm.NewDevice(n.cfg.NVMCapacity,
			nvm.Pacer{Bandwidth: n.cfg.NVMBandwidth, Sleep: n.cfg.Sleep})
	})
	return n.erasure.dev, n.erasure.err
}

// erasureKey packs (owner rank, shard index, checkpoint id) into the
// device's uint64 key space: owner in bits 48+, index in bits 40..47, id
// below. Bounds are checked.
func erasureKey(owner, index int, id uint64) (uint64, error) {
	if owner < 0 || owner >= 1<<15 {
		return 0, fmt.Errorf("node: erasure owner rank %d out of range", owner)
	}
	if index < 0 || index >= 1<<8 {
		return 0, fmt.Errorf("node: erasure shard index %d out of range", index)
	}
	if id >= 1<<40 {
		return 0, fmt.Errorf("node: checkpoint id %d out of erasure-key range", id)
	}
	return uint64(owner+1)<<48 | uint64(index)<<40 | id, nil
}

// StoreErasureShard stores one wire-encoded shard of another rank's
// checkpoint in this node's erasure region. The cluster calls it on each
// shard holder during a coordinated checkpoint.
func (n *Node) StoreErasureShard(owner, index int, id uint64, wire []byte, meta Metadata) error {
	dev, err := n.erasureDevice()
	if err != nil {
		return err
	}
	key, err := erasureKey(owner, index, id)
	if err != nil {
		return err
	}
	if err := dev.Put(nvm.Checkpoint{ID: key, Data: wire, Meta: meta.toMap(id)}); err != nil {
		return fmt.Errorf("node: erasure shard rank %d ckpt %d idx %d: %w", owner, id, index, err)
	}
	return nil
}

// ErasureShard retrieves one wire-encoded shard from this node's erasure
// region, reporting whether it was present.
func (n *Node) ErasureShard(owner, index int, id uint64) ([]byte, bool) {
	dev, err := n.erasureDevice()
	if err != nil {
		return nil, false
	}
	key, err := erasureKey(owner, index, id)
	if err != nil {
		return nil, false
	}
	ckpt, err := dev.Get(key)
	if err != nil {
		return nil, false
	}
	return ckpt.Data, true
}

// DiscardErasureShard removes one shard from this node's erasure region
// (the abort path of a failed coordinated checkpoint). Discarding a shard
// that was never stored is a no-op.
func (n *Node) DiscardErasureShard(owner, index int, id uint64) {
	dev, err := n.erasureDevice()
	if err != nil {
		return
	}
	key, err := erasureKey(owner, index, id)
	if err != nil {
		return
	}
	dev.Discard(key)
}

// ErasureShardIDs lists the checkpoint IDs of the shards this node holds
// for a given owner rank, one entry per resident shard (a node holding two
// shards of the same checkpoint reports its ID twice).
func (n *Node) ErasureShardIDs(owner int) []uint64 {
	dev, err := n.erasureDevice()
	if err != nil {
		return nil
	}
	lo := uint64(owner+1) << 48
	hi := lo + 1<<48
	var out []uint64
	for _, key := range dev.IDs() {
		if key >= lo && key < hi {
			out = append(out, key&(1<<40-1))
		}
	}
	return out
}

// SetErasureSet wires this node's restore path to the cluster's erasure
// router. The cluster layer calls it during assembly.
func (n *Node) SetErasureSet(set ErasureSet) {
	n.mu.Lock()
	n.eraSet = set
	n.mu.Unlock()
}

// restoreFromErasure tries to reconstruct this rank's checkpoint from the
// erasure set.
func (n *Node) restoreFromErasure(id uint64) ([]byte, Metadata, bool) {
	n.mu.Lock()
	set := n.eraSet
	n.mu.Unlock()
	if set == nil {
		return nil, Metadata{}, false
	}
	data, meta, err := set.Reconstruct(n.cfg.Rank, id)
	if err != nil {
		return nil, Metadata{}, false
	}
	return data, meta, true
}

// erasureLatest returns the newest checkpoint ID reconstructible from the
// erasure set, if any.
func (n *Node) erasureLatest() (uint64, bool) {
	n.mu.Lock()
	set := n.eraSet
	n.mu.Unlock()
	if set == nil {
		return 0, false
	}
	ids := set.ShardIDs(n.cfg.Rank)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[len(ids)-1], true
}
