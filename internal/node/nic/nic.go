// Package nic models the compute node's network interface: a bounded
// transmit buffer in front of a paced link. The NDP streams compressed
// checkpoint blocks through it (§4.2.2); when the buffer is full — e.g.
// under conflicting application traffic — Send blocks, which naturally
// pauses the upstream compression pipeline exactly as the paper describes.
package nic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ndpcr/internal/metrics"
	"ndpcr/internal/node/nvm"
)

// ErrClosed reports use of a closed link.
var ErrClosed = errors.New("nic: link closed")

// Link is a paced, buffer-bounded transmit path. It is safe for concurrent
// use.
type Link struct {
	pacer nvm.Pacer

	mu     sync.Mutex
	cond   *sync.Cond
	queued int // bytes in the transmit buffer
	limit  int
	closed bool

	// Metrics (nil until Instrument is called).
	mSentBytes *metrics.Histogram
	mSendWait  *metrics.Histogram
	mSends     *metrics.Counter
}

// Instrument registers the link's metrics (queue depth, send sizes, buffer
// backpressure wait time) with r.
func (l *Link) Instrument(r *metrics.Registry) {
	r.GaugeFunc("ndpcr_nic_queued_bytes", "bytes in the transmit buffer",
		func() float64 { return float64(l.Queued()) })
	r.GaugeFunc("ndpcr_nic_buffer_bytes", "transmit buffer capacity",
		func() float64 { return float64(l.limit) })
	l.mSends = r.Counter("ndpcr_nic_sends_total", "blocks handed to the link")
	l.mSentBytes = r.Histogram("ndpcr_nic_sent_bytes", "block sizes transmitted", metrics.UnitBytes)
	l.mSendWait = r.Histogram("ndpcr_nic_send_wait_seconds", "time blocked on a full transmit buffer", metrics.UnitSeconds)
}

// NewLink creates a link with the given transmit-buffer size in bytes and
// pacing. bufBytes must be positive.
func NewLink(bufBytes int, pacer nvm.Pacer) (*Link, error) {
	if bufBytes <= 0 {
		return nil, fmt.Errorf("nic: buffer size must be positive, got %d", bufBytes)
	}
	l := &Link{pacer: pacer, limit: bufBytes}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Send enqueues a block, blocking while the transmit buffer is full, then
// paces its transmission. Cancelling ctx abandons the wait.
func (l *Link) Send(ctx context.Context, block []byte) error {
	if len(block) > l.limit {
		// Oversized blocks are transmitted in buffer-sized bursts; model
		// as a full-buffer occupancy.
		return l.sendChunked(ctx, block)
	}
	start := time.Now()
	if err := l.reserve(ctx, len(block)); err != nil {
		return err
	}
	if l.mSendWait != nil {
		l.mSendWait.ObserveSince(start)
	}
	l.pacer.Move(len(block))
	l.release(len(block))
	if l.mSends != nil {
		l.mSends.Inc()
		l.mSentBytes.Observe(int64(len(block)))
	}
	return nil
}

func (l *Link) sendChunked(ctx context.Context, block []byte) error {
	for off := 0; off < len(block); off += l.limit {
		end := off + l.limit
		if end > len(block) {
			end = len(block)
		}
		if err := l.Send(ctx, block[off:end]); err != nil {
			return err
		}
	}
	return nil
}

func (l *Link) reserve(ctx context.Context, n int) error {
	// A goroutine watches ctx and wakes the cond waiters on cancellation.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Take the lock before broadcasting so a waiter that has
			// checked ctx but not yet parked cannot miss the wakeup.
			l.mu.Lock()
			l.mu.Unlock() //nolint:staticcheck // empty section orders the broadcast
			l.cond.Broadcast()
		case <-done:
		}
	}()

	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if l.queued+n <= l.limit {
			l.queued += n
			return nil
		}
		l.cond.Wait()
	}
}

func (l *Link) release(n int) {
	l.mu.Lock()
	l.queued -= n
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Queued returns the bytes currently buffered (for tests/metrics).
func (l *Link) Queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queued
}

// Close fails all pending and future sends.
func (l *Link) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}
