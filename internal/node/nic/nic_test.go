package nic

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndpcr/internal/node/nvm"
	"ndpcr/internal/units"
)

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink(0, nvm.Pacer{}); err == nil {
		t.Error("zero buffer accepted")
	}
}

func TestSendPaces(t *testing.T) {
	var slept units.Seconds
	l, err := NewLink(1<<20, nvm.Pacer{Bandwidth: 10 * units.MBps, Sleep: func(d units.Seconds) { slept += d }})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(context.Background(), make([]byte, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	if slept < 0.099 || slept > 0.101 {
		t.Errorf("paced %v, want 0.1 s", slept)
	}
	if l.Queued() != 0 {
		t.Errorf("queued = %d after send", l.Queued())
	}
}

func TestOversizedBlockChunks(t *testing.T) {
	var slept units.Seconds
	l, _ := NewLink(1024, nvm.Pacer{Bandwidth: 1 * units.MBps, Sleep: func(d units.Seconds) { slept += d }})
	if err := l.Send(context.Background(), make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	if slept < 0.0099 || slept > 0.0101 {
		t.Errorf("paced %v, want 0.01 s total", slept)
	}
}

func TestBackpressure(t *testing.T) {
	// A slow link with a small buffer: concurrent senders must all
	// eventually complete, and the buffer never overfills.
	block := make(chan units.Seconds, 1024)
	l, _ := NewLink(4096, nvm.Pacer{
		Bandwidth: 1000 * units.MBps,
		Sleep: func(d units.Seconds) {
			block <- d
			time.Sleep(100 * time.Microsecond) // simulated wire time
		},
	})
	var wg sync.WaitGroup
	var sent atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := l.Send(context.Background(), make([]byte, 1024)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				sent.Add(1)
				if q := l.Queued(); q > 4096 {
					t.Errorf("buffer overfilled: %d", q)
					return
				}
			}
		}()
	}
	wg.Wait()
	if sent.Load() != 160 {
		t.Errorf("sent %d blocks", sent.Load())
	}
}

func TestContextCancellation(t *testing.T) {
	// Fill the buffer with a send that never drains (sleep blocks), then
	// verify a second send cancels cleanly.
	release := make(chan struct{})
	l, _ := NewLink(100, nvm.Pacer{
		Bandwidth: 1, // absurdly slow
		Sleep:     func(units.Seconds) { <-release },
	})
	go l.Send(context.Background(), make([]byte, 100)) // occupies the buffer

	// Wait until the first send holds the buffer.
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() != 100 {
		if time.Now().After(deadline) {
			t.Fatal("first send never queued")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- l.Send(ctx, make([]byte, 50)) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled send did not return")
	}
	close(release)
}

func TestClose(t *testing.T) {
	release := make(chan struct{})
	l, _ := NewLink(100, nvm.Pacer{Bandwidth: 1, Sleep: func(units.Seconds) { <-release }})
	go l.Send(context.Background(), make([]byte, 100))
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() != 100 {
		if time.Now().After(deadline) {
			t.Fatal("first send never queued")
		}
		time.Sleep(time.Millisecond)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- l.Send(context.Background(), make([]byte, 50)) }()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send did not observe close")
	}
	close(release)
	// Sends after close fail immediately.
	if err := l.Send(context.Background(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close send: %v", err)
	}
}
