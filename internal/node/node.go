// Package node implements the compute-node checkpoint/restart runtime of
// §4: a host API that commits application snapshots to node-local NVM
// (pausing any NDP activity for the duration, §4.2.1), an NDP engine that
// drains them to global I/O with overlapped compression (§4.2.2), and a
// two-path restore — local NVM when available, otherwise a streamed fetch
// from global I/O with pipelined host-side decompression (§4.3).
package node

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/delta"
	"ndpcr/internal/metrics"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/ndp"
	"ndpcr/internal/node/nic"
	"ndpcr/internal/node/nvm"
	"ndpcr/internal/units"
)

// Metadata is the BLCR-style identification attached to every checkpoint
// (§4.2.1): enough to find the latest checkpoint of an application rank
// after a restart.
type Metadata struct {
	Job  string
	Rank int
	// Step is the application's own progress marker (iteration count).
	Step int
	// Shards is the shard count of a partitionable snapshot (the elastic
	// frame's header count, stamped at checkpoint time). Zero means the
	// snapshot is opaque — restorable only onto the same rank topology.
	// Carrying the count in metadata lets the elastic restore planner size
	// an N→M re-shard from Stat calls alone, without fetching payloads.
	Shards int
}

func (m Metadata) toMap(id uint64) map[string]string {
	mm := map[string]string{
		"job":  m.Job,
		"rank": strconv.Itoa(m.Rank),
		"step": strconv.Itoa(m.Step),
		"ckpt": strconv.FormatUint(id, 10),
	}
	if m.Shards > 0 {
		mm["shards"] = strconv.Itoa(m.Shards)
	}
	return mm
}

// ErrBadMetadata reports checkpoint metadata that fails to decode. Corrupt
// metadata must never silently decode as rank 0 / step 0: a restore acting
// on it could resurrect the wrong rank's state.
var ErrBadMetadata = errors.New("node: corrupt checkpoint metadata")

func metadataFrom(mm map[string]string) (Metadata, error) {
	var m Metadata
	var err error
	m.Job = mm["job"]
	if m.Rank, err = strconv.Atoi(mm["rank"]); err != nil {
		return Metadata{}, fmt.Errorf("%w: rank %q: %v", ErrBadMetadata, mm["rank"], err)
	}
	if m.Step, err = strconv.Atoi(mm["step"]); err != nil {
		return Metadata{}, fmt.Errorf("%w: step %q: %v", ErrBadMetadata, mm["step"], err)
	}
	// "shards" is optional (pre-elastic checkpoints omit it) but must parse
	// when present: a garbled count would mis-plan every elastic restore.
	if s, ok := mm["shards"]; ok {
		if m.Shards, err = strconv.Atoi(s); err != nil || m.Shards < 0 {
			return Metadata{}, fmt.Errorf("%w: shards %q", ErrBadMetadata, s)
		}
	}
	return m, nil
}

// MetadataFromMap decodes a store meta map into Metadata — the exported
// form the restore planner uses to read shard counts off Stat results.
func MetadataFromMap(mm map[string]string) (Metadata, error) { return metadataFrom(mm) }

// Config assembles a node.
type Config struct {
	Job  string
	Rank int

	// NVMCapacity bounds the local checkpoint region. Zero selects
	// 4 GiB (enough for tests; real deployments size it to hold a few
	// checkpoints).
	NVMCapacity int64
	// NVMBandwidth paces local commits; zero disables pacing.
	NVMBandwidth units.Bandwidth
	// Sleep is the pacing sleep hook shared by all paced devices; nil
	// performs no real delay (durations are still modeled).
	Sleep func(units.Seconds)

	// Store is the shared global I/O store (required): in-process
	// (iostore.Store), remote (iod.Client), or sharded+replicated
	// (shardstore.Store).
	Store iostore.Backend

	// Codec enables NDP compression of drained checkpoints; nil drains
	// raw.
	Codec compress.Codec
	// NDPWorkers is the NDP core count for compression (default 4, the
	// paper's gzip(1) configuration).
	NDPWorkers int
	// BlockSize is the drain streaming unit (default 1 MB).
	BlockSize int
	// RestoreWorkers sizes the host-side decompression pool on restore
	// (default 8; the paper fans blocks out across host cores, §4.3).
	RestoreWorkers int
	// PrefetchBlocks bounds how many fetched-but-not-yet-consumed blocks a
	// streamed restore keeps in flight (default 2×RestoreWorkers): it is
	// both the block-fetch parallelism and the memory bound on the
	// fetch→decompress pipeline. When the store declines block reads for
	// a key (StatBlocks ok == false), restores fall back to a
	// whole-object fetch.
	PrefetchBlocks int
	// DrainWindow bounds how many store writes an NDP drain keeps in
	// flight at once (default 4; see ndp.Config.SendWindow). 1 restores
	// the fully serial sender.
	DrainWindow int
	// SerializeDrain disables the compress/send overlap (ablation).
	SerializeDrain bool
	// Incremental enables block-level incremental drains: after a full
	// checkpoint reaches I/O, the NDP ships only changed blocks, with a
	// full checkpoint every FullEvery drains (the paper conclusion's
	// proposed NDP extension).
	Incremental bool
	// FullEvery bounds incremental patch chains (default 8).
	FullEvery int
	// DeltaBlockSize is the incremental-dedup granularity (default 64 KiB).
	DeltaBlockSize int
	// DisableNDP turns the background drain off entirely: checkpoints
	// reach I/O only via explicit host writes (the conventional
	// multilevel baseline).
	DisableNDP bool
	// MaxDrainAttempts bounds automatic NDP drain retries; after N
	// failures the checkpoint is permanently failed on the durability
	// tracker instead of blocking async waiters forever. Zero keeps the
	// legacy no-auto-retry behavior (see ndp.Config.MaxDrainAttempts).
	MaxDrainAttempts int
	// DrainRetryBackoff is the base delay between automatic drain retries
	// (default 50ms).
	DrainRetryBackoff time.Duration
	// DrainGate, when non-nil, is acquired around every NDP drain — the
	// gateway's QoS-weighted drain scheduler plugs in here (see
	// ndp.Config.Gate).
	DrainGate func(ctx context.Context) (release func(), err error)
	// NICBuffer is the NIC transmit buffer size (default 8 MB).
	NICBuffer int
	// NICBandwidth paces the NIC link; zero disables pacing.
	NICBandwidth units.Bandwidth

	// OnError receives asynchronous NDP errors.
	OnError func(error)

	// Metrics, when non-nil, is the registry every layer of this node
	// (NVM, NIC, NDP, restores) reports into; cluster passes one registry
	// to all its nodes so per-node series aggregate. Nil creates a private
	// registry, exposed via Node.Metrics.
	Metrics *metrics.Registry
	// Timelines, when non-nil, collects per-checkpoint phase timelines.
	// Nil creates a private set, exposed via Node.Timelines.
	Timelines *metrics.TimelineSet
}

// Node is one compute node's C/R runtime. All methods are safe for
// concurrent use, though an application typically serializes Commit and
// Restore itself.
type Node struct {
	cfg    Config
	device *nvm.Device
	link   *nic.Link
	engine *ndp.Engine // nil when DisableNDP

	// dur is the per-node durability state machine: commit marks LevelNVM,
	// the NDP engine marks LevelStore as drains land, and the cluster's
	// propagation marks the partner/erasure levels. The node owns it and
	// closes it after the engine.
	dur *ndp.Tracker

	// partner is this node's region for *other* ranks' redundant copies;
	// buddy is the node holding *this* rank's copies (§3.4 partner level).
	partner partnerRegion
	buddy   *Node

	// erasure is this node's region for other ranks' erasure shards;
	// eraSet is the cluster's shard router serving *this* rank's
	// reconstructions (§3.4 erasure-set level).
	erasure erasureRegion
	eraSet  ErasureSet

	// commitMu serializes Commit's reserve-ID → NVM-write → confirm
	// sequence so a failed NVM Put never burns a checkpoint ID (the ID is
	// only consumed once the write succeeded).
	commitMu sync.Mutex

	mu     sync.Mutex
	nextID uint64
	closed bool

	reg       *metrics.Registry
	timelines *metrics.TimelineSet

	mCommits          *metrics.Counter
	mCommitSecs       *metrics.Histogram
	mCommitBytes      *metrics.Histogram
	mMetaErrs         *metrics.Counter
	mRestoreSecs      *metrics.Histogram
	mDecompressSecs   *metrics.Histogram
	mStreamedRestores *metrics.Counter
	mRestores         [LevelIO + 1]*metrics.Counter
}

// New assembles and starts a node runtime.
func New(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("node: Store is required")
	}
	if cfg.Job == "" {
		return nil, errors.New("node: Job is required")
	}
	if cfg.NVMCapacity == 0 {
		cfg.NVMCapacity = 4 << 30
	}
	if cfg.NDPWorkers == 0 {
		cfg.NDPWorkers = 4
	}
	if cfg.RestoreWorkers <= 0 {
		cfg.RestoreWorkers = 8
	}
	if cfg.PrefetchBlocks <= 0 {
		cfg.PrefetchBlocks = 2 * cfg.RestoreWorkers
	}
	if cfg.NICBuffer == 0 {
		cfg.NICBuffer = 8 << 20
	}

	device, err := nvm.NewDevice(cfg.NVMCapacity, nvm.Pacer{Bandwidth: cfg.NVMBandwidth, Sleep: cfg.Sleep})
	if err != nil {
		return nil, err
	}
	link, err := nic.NewLink(cfg.NICBuffer, nvm.Pacer{Bandwidth: cfg.NICBandwidth, Sleep: cfg.Sleep})
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, device: device, link: link, nextID: 1, dur: ndp.NewTracker()}
	n.reg = cfg.Metrics
	if n.reg == nil {
		n.reg = metrics.NewRegistry()
	}
	n.timelines = cfg.Timelines
	if n.timelines == nil {
		n.timelines = metrics.NewTimelineSet(0)
	}
	device.Instrument(n.reg)
	link.Instrument(n.reg)
	n.dur.Instrument(n.reg)
	if s, ok := cfg.Store.(interface{ Instrument(*metrics.Registry) }); ok {
		s.Instrument(n.reg)
	}
	n.mCommits = n.reg.Counter("ndpcr_node_commits_total", "snapshots committed to local NVM")
	n.mCommitSecs = n.reg.Histogram("ndpcr_node_commit_seconds", "host pause per NVM commit", metrics.UnitSeconds)
	n.mCommitBytes = n.reg.Histogram("ndpcr_node_commit_bytes", "snapshot sizes committed", metrics.UnitBytes)
	n.mMetaErrs = n.reg.Counter("ndpcr_node_metadata_errors_total", "checkpoints rejected for corrupt metadata")
	n.mRestoreSecs = n.reg.Histogram("ndpcr_node_restore_seconds", "wall time per restore", metrics.UnitSeconds)
	n.mDecompressSecs = n.reg.Histogram("ndpcr_node_decompress_seconds", "busy time per restored block decompression", metrics.UnitSeconds)
	n.mStreamedRestores = n.reg.Counter("ndpcr_node_streamed_restores_total",
		"I/O fetches served block-streamed (fetch overlapped with decompress)")
	for l := LevelNone; l <= LevelIO; l++ {
		n.mRestores[l] = n.reg.Counter(
			fmt.Sprintf("ndpcr_node_restores_total{level=%q}", l),
			"restores served, by storage level (none = failed)")
	}
	if !cfg.DisableNDP {
		n.engine, err = ndp.New(ndp.Config{
			Job:               cfg.Job,
			Rank:              cfg.Rank,
			Device:            device,
			Store:             cfg.Store,
			Link:              link,
			Codec:             cfg.Codec,
			Workers:           cfg.NDPWorkers,
			BlockSize:         cfg.BlockSize,
			Serialize:         cfg.SerializeDrain,
			SendWindow:        cfg.DrainWindow,
			Incremental:       cfg.Incremental,
			FullEvery:         cfg.FullEvery,
			DeltaBlockSize:    cfg.DeltaBlockSize,
			OnError:           cfg.OnError,
			Tracker:           n.dur,
			Gate:              cfg.DrainGate,
			MaxDrainAttempts:  cfg.MaxDrainAttempts,
			DrainRetryBackoff: cfg.DrainRetryBackoff,
			Metrics:           n.reg,
			Timelines:         n.timelines,
		})
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Device exposes the NVM device (tests, metrics).
func (n *Node) Device() *nvm.Device { return n.device }

// Engine exposes the NDP engine, nil when disabled.
func (n *Node) Engine() *ndp.Engine { return n.engine }

// Durability exposes the node's durability tracker: per-level watermarks,
// per-ID failure state, and awaitable completion — the single surface that
// replaces ad-hoc WaitDrained plumbing for async checkpointing.
func (n *Node) Durability() *ndp.Tracker { return n.dur }

// DurableAt reports whether checkpoint id is durable at the given level
// ("id or newer" watermark semantics; failed IDs are never durable).
func (n *Node) DurableAt(id uint64, level ndp.Level) bool {
	return n.dur.DurableAt(id, level)
}

// WaitDurableCtx blocks until checkpoint id is durable at level, the ID
// permanently fails (error wraps ndp.ErrCheckpointFailed), ctx ends, or
// the node shuts down (ndp.ErrStopped).
func (n *Node) WaitDurableCtx(ctx context.Context, id uint64, level ndp.Level) error {
	return n.dur.WaitDurableCtx(ctx, id, level)
}

// Metrics exposes the node's metric registry.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Timelines exposes the node's per-checkpoint phase timelines.
func (n *Node) Timelines() *metrics.TimelineSet { return n.timelines }

// Commit writes one application snapshot to local NVM and notifies the
// NDP. The host "pauses" for the NVM write — any concurrent NDP NVM access
// is excluded for the duration (§4.2.1). It returns the checkpoint ID.
//
// The ID is reserved only once the NVM write succeeds: a failed Commit
// leaves nextID untouched, so the same ID is offered again on retry and a
// single rank's NVM failure cannot desynchronize a coordinated checkpoint's
// ID sequence.
func (n *Node) Commit(snapshot []byte, meta Metadata) (uint64, error) {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	id, ok := n.reserveID()
	if !ok {
		return 0, errors.New("node: closed")
	}
	n.fillMeta(&meta)
	start := time.Now()
	if err := n.putNVM(id, snapshot, meta); err != nil {
		return 0, fmt.Errorf("node: commit %d: %w", id, err)
	}
	n.finishCommit(id, len(snapshot), start)
	return id, nil
}

// CommitAsync is Commit with admission control instead of ErrFull: when
// NVM occupancy minus drain-locked residents cannot admit the snapshot,
// the commit blocks until drains release space or ctx ends — the latter
// surfaces a typed nvm.ErrBackpressure instead of failing. The commit
// returns as soon as the NVM write lands (the checkpoint is durable at
// ndp.LevelNVM); background propagation carries it to the higher levels,
// observable via the durability tracker.
func (n *Node) CommitAsync(ctx context.Context, snapshot []byte, meta Metadata) (uint64, error) {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	id, ok := n.reserveID()
	if !ok {
		return 0, errors.New("node: closed")
	}
	n.fillMeta(&meta)
	start := time.Now()
	for {
		// Admission is checked without holding the NVM pause gate: a drain
		// needs gate read access to make progress, and its progress is what
		// frees the space being waited for.
		if err := n.device.WaitAdmit(ctx, int64(len(snapshot))); err != nil {
			return 0, fmt.Errorf("node: commit %d: %w", id, err)
		}
		err := n.putNVM(id, snapshot, meta)
		if err == nil {
			break
		}
		if !errors.Is(err, nvm.ErrFull) {
			return 0, fmt.Errorf("node: commit %d: %w", id, err)
		}
		// A drain locked a new resident between the admission check and
		// the write; WaitAdmit sees the changed state and parks again.
	}
	n.finishCommit(id, len(snapshot), start)
	return id, nil
}

// reserveID returns the ID the commit will use without consuming it (a
// failed NVM write must not burn an ID); ok is false on a closed node.
func (n *Node) reserveID() (uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, false
	}
	return n.nextID, true
}

func (n *Node) fillMeta(meta *Metadata) {
	if meta.Job == "" {
		meta.Job = n.cfg.Job
		meta.Rank = n.cfg.Rank
	}
}

// putNVM performs the paused NVM write (§4.2.1: the host gets the full
// device bandwidth; concurrent NDP reads are excluded).
func (n *Node) putNVM(id uint64, snapshot []byte, meta Metadata) error {
	if n.engine != nil {
		n.engine.PauseNVM()
		defer n.engine.ResumeNVM()
	}
	return n.device.Put(nvm.Checkpoint{ID: id, Data: snapshot, Meta: meta.toMap(id)})
}

// finishCommit confirms the ID, marks NVM-durable, records commit metrics,
// and rings the NDP doorbell.
func (n *Node) finishCommit(id uint64, size int, start time.Time) {
	n.mu.Lock()
	n.nextID = id + 1
	n.mu.Unlock()
	n.dur.MarkDurable(ndp.LevelNVM, id)
	n.timelines.Observe(metrics.KindCheckpoint, id, metrics.PhaseCommit, start, time.Now())
	n.mCommits.Inc()
	n.mCommitSecs.ObserveSince(start)
	n.mCommitBytes.Observe(int64(size))
	if n.engine != nil {
		n.engine.Notify()
	}
}

// NextID returns the checkpoint ID the next successful Commit will use.
func (n *Node) NextID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextID
}

// ResyncNextID raises the node's checkpoint counter to next (never lowers
// it). The cluster calls it on every node after an aborted coordinated
// checkpoint so the surviving ranks and the failed rank agree again on the
// next global ID — the aborted ID is skipped, keeping IDs monotonic and
// never reusing a poisoned one.
func (n *Node) ResyncNextID(next uint64) {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if next > n.nextID {
		n.nextID = next
	}
}

// DiscardCommit rolls one committed checkpoint back out of this node: the
// NDP is told never to acknowledge a drain of the ID (deleting anything it
// already shipped), the NVM entry is force-removed, and the global object
// is deleted. It is the per-node abort path of a failed coordinated
// checkpoint; discarding an ID that was never committed here is a no-op.
// The returned error reports a failed global delete — a leaked object the
// caller can now see (and a cluster rollback counts).
func (n *Node) DiscardCommit(id uint64) error {
	if n.engine != nil {
		n.engine.Discard(id) // also fails the ID on the shared tracker
	} else {
		n.dur.Fail(id, ndp.ErrDiscarded)
	}
	n.device.Discard(id)
	return n.cfg.Store.Delete(context.Background(),
		iostore.Key{Job: n.cfg.Job, Rank: n.cfg.Rank, ID: id})
}

// WriteThrough writes a committed checkpoint to global I/O from the host —
// the conventional multilevel path used when the NDP is disabled. It
// blocks for the full (uncompressed) transfer.
func (n *Node) WriteThrough(ctx context.Context, id uint64) error {
	ckpt, err := n.device.Get(id)
	if err != nil {
		return fmt.Errorf("node: write-through %d: %w", id, err)
	}
	obj := iostore.Object{
		Key:      iostore.Key{Job: n.cfg.Job, Rank: n.cfg.Rank, ID: id},
		OrigSize: int64(len(ckpt.Data)),
		Blocks:   [][]byte{ckpt.Data},
		Meta:     ckpt.Meta,
	}
	if err := n.cfg.Store.Put(ctx, obj); err != nil {
		return err
	}
	n.dur.MarkDurable(ndp.LevelStore, id)
	return nil
}

// ErrNoCheckpoint reports that neither level holds a restorable checkpoint.
var ErrNoCheckpoint = errors.New("node: no checkpoint available at any level")

// Restore returns the newest restorable snapshot, walking the §4.2.3
// recovery hierarchy: local NVM, then the buddy node's partner copy
// (§3.4), then the erasure set, then global I/O with pipelined host
// decompression (§4.3). It reports which level served the restore. The
// context bounds the global-I/O leg (fetches, shard failover, reconnect
// backoff).
func (n *Node) Restore(ctx context.Context) ([]byte, Metadata, Level, error) {
	start := time.Now()
	data, meta, level, err := n.restore(ctx)
	n.recordRestore(level, start, err)
	return data, meta, level, err
}

func (n *Node) restore(ctx context.Context) ([]byte, Metadata, Level, error) {
	if ckpt, ok := n.device.Latest(); ok {
		// Local path: one paced NVM read.
		t0 := time.Now()
		data, err := n.device.Get(ckpt.ID)
		if err == nil {
			meta, merr := metadataFrom(data.Meta)
			if merr == nil {
				n.restoreSpan(ckpt.ID, metrics.PhaseFetch, t0)
				n.timelines.Finish(metrics.KindRestore, ckpt.ID)
				return data.Data, meta, LevelLocal, nil
			}
			// Corrupt local metadata is a level miss, not a wrong-rank
			// restore: fall through the hierarchy.
			n.mMetaErrs.Inc()
		}
	}
	// Pick the newest checkpoint across the partner, erasure, and I/O
	// levels; on ties prefer the cheaper level (partner, then erasure).
	var pLatest uint64
	pOK := false
	n.mu.Lock()
	buddy := n.buddy
	n.mu.Unlock()
	if buddy != nil {
		if ids := buddy.PartnerCopyIDs(n.cfg.Rank); len(ids) > 0 {
			pLatest, pOK = ids[len(ids)-1], true
		}
	}
	eLatest, eOK := n.erasureLatest()
	// A transport error is not "no checkpoint stored": remember it, try the
	// cheaper levels, and only report the unreachable I/O level if nothing
	// else serves.
	ioLatest, ioOK, ioErr := n.cfg.Store.Latest(ctx, n.cfg.Job, n.cfg.Rank)
	if ioErr != nil {
		ioOK = false
	}
	if pOK && (!eOK || pLatest >= eLatest) && (!ioOK || pLatest >= ioLatest) {
		t0 := time.Now()
		if data, meta, ok := n.restoreFromPartner(pLatest); ok {
			n.restoreSpan(pLatest, metrics.PhaseFetch, t0)
			n.timelines.Finish(metrics.KindRestore, pLatest)
			return data, meta, LevelPartner, nil
		}
	}
	if eOK && (!ioOK || eLatest >= ioLatest) {
		t0 := time.Now()
		if data, meta, ok := n.restoreFromErasure(eLatest); ok {
			n.restoreSpan(eLatest, metrics.PhaseFetch, t0)
			n.timelines.Finish(metrics.KindRestore, eLatest)
			return data, meta, LevelErasure, nil
		}
	}
	if !ioOK {
		if ioErr != nil {
			return nil, Metadata{}, LevelNone, fmt.Errorf("%w (I/O level unreachable: %v)", ErrNoCheckpoint, ioErr)
		}
		return nil, Metadata{}, LevelNone, ErrNoCheckpoint
	}
	data, meta, err := n.fetchFromIO(ctx, n.cfg.Rank, ioLatest)
	if err != nil {
		return nil, Metadata{}, LevelNone, err
	}
	n.timelines.Finish(metrics.KindRestore, ioLatest)
	return data, meta, LevelIO, nil
}

// RestoreID restores a specific checkpoint ID: local, then partner, then
// the erasure set, then global I/O.
func (n *Node) RestoreID(ctx context.Context, id uint64) ([]byte, Metadata, Level, error) {
	start := time.Now()
	data, meta, level, err := n.restoreByID(ctx, id)
	n.recordRestore(level, start, err)
	return data, meta, level, err
}

func (n *Node) restoreByID(ctx context.Context, id uint64) ([]byte, Metadata, Level, error) {
	t0 := time.Now()
	if data, err := n.device.Get(id); err == nil {
		meta, merr := metadataFrom(data.Meta)
		if merr == nil {
			n.restoreSpan(id, metrics.PhaseFetch, t0)
			n.timelines.Finish(metrics.KindRestore, id)
			return data.Data, meta, LevelLocal, nil
		}
		// Fall through: corrupt local metadata is a level miss.
		n.mMetaErrs.Inc()
	}
	t0 = time.Now()
	if data, meta, ok := n.restoreFromPartner(id); ok {
		n.restoreSpan(id, metrics.PhaseFetch, t0)
		n.timelines.Finish(metrics.KindRestore, id)
		return data, meta, LevelPartner, nil
	}
	t0 = time.Now()
	if data, meta, ok := n.restoreFromErasure(id); ok {
		n.restoreSpan(id, metrics.PhaseFetch, t0)
		n.timelines.Finish(metrics.KindRestore, id)
		return data, meta, LevelErasure, nil
	}
	data, meta, err := n.fetchFromIO(ctx, n.cfg.Rank, id)
	if err != nil {
		return nil, Metadata{}, LevelNone, err
	}
	n.timelines.Finish(metrics.KindRestore, id)
	return data, meta, LevelIO, nil
}

// restoreSpan records one restore-path phase span ending now.
func (n *Node) restoreSpan(id uint64, phase metrics.Phase, start time.Time) {
	n.timelines.Observe(metrics.KindRestore, id, phase, start, time.Now())
}

// recordRestore updates the restore counters and latency histogram.
func (n *Node) recordRestore(level Level, start time.Time, err error) {
	if err != nil {
		level = LevelNone
	}
	n.mRestores[level].Inc()
	n.mRestoreSecs.ObserveSince(start)
}

// Level identifies which storage level served a restore.
type Level int

// Restore levels.
const (
	LevelNone Level = iota
	LevelLocal
	LevelPartner
	LevelErasure
	LevelIO
)

func (l Level) String() string {
	switch l {
	case LevelLocal:
		return "local"
	case LevelPartner:
		return "partner"
	case LevelErasure:
		return "erasure"
	case LevelIO:
		return "io"
	}
	return "none"
}

// fetchFromIO streams rank's checkpoint from the global store (usually
// this node's own rank; an elastic restore fetches other source ranks'
// objects through the same path), decompressing across a host worker pool
// and, for incremental objects, walking the patch chain back to its full
// base and replaying it forward.
//
// Finish-or-discard: a failed fetch discards the restore timeline it
// opened. The success paths Finish it (in the callers); without the
// discard, every failed restore left an open timeline behind forever —
// residue that DiscardOlder never collects, since failures don't advance
// the finished-ID watermark.
func (n *Node) fetchFromIO(ctx context.Context, rank int, id uint64) (_ []byte, _ Metadata, err error) {
	defer func() {
		if err != nil {
			n.timelines.Discard(metrics.KindRestore, id)
		}
	}()
	var patches []*delta.Patch
	var meta Metadata
	curID := id
	for depth := 0; ; depth++ {
		if depth > maxPatchChain {
			return nil, Metadata{}, fmt.Errorf(
				"node: restore %d: patch chain exceeds %d links", id, maxPatchChain)
		}
		payload, m, base, err := n.fetchObject(ctx, rank, id, curID)
		if err != nil {
			return nil, Metadata{}, err
		}
		if depth == 0 {
			meta = m // the requested checkpoint's metadata wins
		}
		if base == 0 {
			// Full checkpoint: replay the collected patches (newest was
			// appended first, so walk backwards).
			applyStart := time.Now()
			data := payload
			for i := len(patches) - 1; i >= 0; i-- {
				data, err = delta.Apply(data, patches[i])
				if err != nil {
					return nil, Metadata{}, fmt.Errorf("node: restore %d: %w", id, err)
				}
			}
			n.restoreSpan(id, metrics.PhaseApply, applyStart)
			return data, meta, nil
		}
		p, err := delta.Decode(payload)
		if err != nil {
			return nil, Metadata{}, fmt.Errorf("node: restore %d: %w", id, err)
		}
		patches = append(patches, p)
		curID = base
	}
}

// maxPatchChain bounds incremental-restore recursion against corrupt
// metadata cycles.
const maxPatchChain = 1024

// fetchObject retrieves one object's decompressed payload plus its
// metadata and delta base (0 for full checkpoints). traceID keys the
// restore timeline (the originally requested checkpoint), while id is the
// patch-chain link being fetched. The streamed path (fetch overlapped with
// decompression) is tried first; a store that declines block reads for the
// key (StatBlocks ok == false) gets the monolithic whole-object fetch.
func (n *Node) fetchObject(ctx context.Context, rank int, traceID, id uint64) ([]byte, Metadata, uint64, error) {
	if out, meta, base, handled, err := n.fetchObjectStreamed(ctx, rank, traceID, id); handled {
		if err == nil {
			n.mStreamedRestores.Inc()
		}
		return out, meta, base, err
	}
	fetchStart := time.Now()
	key := iostore.Key{Job: n.cfg.Job, Rank: rank, ID: id}
	obj, err := n.cfg.Store.Get(ctx, key)
	if err != nil {
		return nil, Metadata{}, 0, fmt.Errorf("node: restore %d from I/O: %w", id, err)
	}
	n.restoreSpan(traceID, metrics.PhaseFetch, fetchStart)
	meta, err := metadataFrom(obj.Meta)
	if err != nil {
		n.mMetaErrs.Inc()
		return nil, Metadata{}, 0, fmt.Errorf("node: restore %d: %w", id, err)
	}
	if obj.Codec == "" {
		out := make([]byte, 0, obj.OrigSize)
		for _, b := range obj.Blocks {
			out = append(out, b...)
		}
		return out, meta, obj.DeltaBase, nil
	}
	codec, err := compress.Lookup(obj.Codec, obj.CodecLevel)
	if err != nil {
		return nil, Metadata{}, 0, fmt.Errorf("node: restore %d: %w", id, err)
	}
	// Pipelined host decompression: each block to a different core (§4.3).
	decompressStart := time.Now()
	plain := make([][]byte, len(obj.Blocks))
	errs := make([]error, len(obj.Blocks))
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := n.cfg.RestoreWorkers
	if workers > len(obj.Blocks) {
		workers = len(obj.Blocks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				plain[i], errs[i] = codec.Decompress(nil, obj.Blocks[i])
				n.mDecompressSecs.ObserveSince(t0)
			}
		}()
	}
	for i := range obj.Blocks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	n.restoreSpan(traceID, metrics.PhaseDecompress, decompressStart)
	out := make([]byte, 0, obj.OrigSize)
	for i, p := range plain {
		if errs[i] != nil {
			return nil, Metadata{}, 0, fmt.Errorf("node: restore %d block %d: %w", id, i, errs[i])
		}
		out = append(out, p...)
	}
	if int64(len(out)) != obj.OrigSize {
		return nil, Metadata{}, 0, fmt.Errorf("node: restore %d: reassembled %d bytes, expected %d",
			id, len(out), obj.OrigSize)
	}
	return out, meta, obj.DeltaBase, nil
}

// envelope tracks the wall-clock envelope of overlapping operations (the
// streamed restore's fetchers or decompress workers): earliest start,
// latest end. On an overlapped restore the fetch and decompress spans
// overlap, so the timeline's Sum exceeds its Total by the realized overlap
// — the same signature the NDP drain pipeline leaves on the commit side.
type envelope struct {
	mu     sync.Mutex
	marked bool
	start  time.Time
	end    time.Time
}

func (c *envelope) mark(start, end time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.marked || start.Before(c.start) {
		c.start = start
	}
	if !c.marked || end.After(c.end) {
		c.end = end
	}
	c.marked = true
}

// fetchObjectStreamed fetches an object block by block, feeding each block
// into the decompression pool as it lands so decompressing block i
// overlaps fetching block i+1 (§4.3 mirrored onto the restore path). The
// in-flight window is bounded by PrefetchBlocks: that many fetchers run
// concurrently (parallel GetBlocks spread across the iod client's lanes)
// and at most that many fetched blocks wait un-decompressed.
//
// handled == false means the store declined block reads for this key
// (pre-streaming iod server, absent object, transport failure) and the
// caller must fall back to the monolithic fetch.
func (n *Node) fetchObjectStreamed(ctx context.Context, rank int, traceID, id uint64) (_ []byte, _ Metadata, _ uint64, handled bool, err error) {
	key := iostore.Key{Job: n.cfg.Job, Rank: rank, ID: id}
	obj, numBlocks, ok, serr := n.cfg.Store.StatBlocks(ctx, key)
	if serr != nil || !ok {
		return nil, Metadata{}, 0, false, nil
	}
	meta, err := metadataFrom(obj.Meta)
	if err != nil {
		n.mMetaErrs.Inc()
		return nil, Metadata{}, 0, true, fmt.Errorf("node: restore %d: %w", id, err)
	}
	var codec compress.Codec
	if obj.Codec != "" {
		codec, err = compress.Lookup(obj.Codec, obj.CodecLevel)
		if err != nil {
			return nil, Metadata{}, 0, true, fmt.Errorf("node: restore %d: %w", id, err)
		}
	}

	window := n.cfg.PrefetchBlocks
	if window > numBlocks {
		window = numBlocks
	}
	if window < 1 {
		window = 1
	}
	workers := n.cfg.RestoreWorkers
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers < 1 {
		workers = 1
	}

	type block struct {
		idx  int
		data []byte
	}
	var (
		fetchClock, decClock envelope
		plain                = make([][]byte, numBlocks)
		blockErrs            = make([]error, numBlocks)
		indices              = make(chan int)
		fetched              = make(chan block, window)
		stop                 = make(chan struct{})
		stopOnce             sync.Once
	)
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	var fwg sync.WaitGroup
	for f := 0; f < window; f++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for i := range indices {
				t0 := time.Now()
				b, ferr := n.cfg.Store.GetBlock(ctx, key, i)
				fetchClock.mark(t0, time.Now())
				if ferr != nil {
					blockErrs[i] = ferr
					abort()
					return
				}
				select {
				case fetched <- block{i, b}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		defer close(indices)
		for i := 0; i < numBlocks; i++ {
			select {
			case indices <- i:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		fwg.Wait()
		close(fetched)
	}()

	var dwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for blk := range fetched {
				if codec == nil {
					plain[blk.idx] = blk.data
					continue
				}
				t0 := time.Now()
				p, derr := codec.Decompress(nil, blk.data)
				decClock.mark(t0, time.Now())
				n.mDecompressSecs.ObserveSince(t0)
				if derr != nil {
					blockErrs[blk.idx] = derr
					abort()
					return
				}
				plain[blk.idx] = p
			}
		}()
	}
	fwg.Wait()
	dwg.Wait()

	if fetchClock.marked {
		n.timelines.Observe(metrics.KindRestore, traceID, metrics.PhaseFetch, fetchClock.start, fetchClock.end)
	}
	if decClock.marked {
		n.timelines.Observe(metrics.KindRestore, traceID, metrics.PhaseDecompress, decClock.start, decClock.end)
	}
	for i, berr := range blockErrs {
		if berr != nil {
			return nil, Metadata{}, 0, true, fmt.Errorf("node: restore %d block %d: %w", id, i, berr)
		}
	}
	out := make([]byte, 0, obj.OrigSize)
	for _, p := range plain {
		out = append(out, p...)
	}
	if int64(len(out)) != obj.OrigSize {
		return nil, Metadata{}, 0, true, fmt.Errorf("node: restore %d: reassembled %d bytes, expected %d",
			id, len(out), obj.OrigSize)
	}
	return out, meta, obj.DeltaBase, true, nil
}

// FailLocal simulates a node failure that destroys local state: the NVM is
// wiped — including any partner copies and erasure shards this node held
// for other ranks, since they live on the same physical device — and an
// in-flight drain aborts. The node keeps running (a replacement node
// reattaches to the same job/rank).
func (n *Node) FailLocal() {
	n.device.Wipe()
	if dev, err := n.partnerDevice(); err == nil {
		dev.Wipe()
	}
	if dev, err := n.erasureDevice(); err == nil {
		dev.Wipe()
	}
}

// Close shuts the runtime down.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	if n.engine != nil {
		n.engine.Close()
	}
	// Close the tracker after the engine so an in-flight drain's final
	// MarkDurable wins the race against the stop; parked waiters then get
	// the definitive answer rather than ErrStopped.
	n.dur.Close()
	n.link.Close()
}
