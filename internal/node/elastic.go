package node

import (
	"context"
	"fmt"
	"time"

	"ndpcr/internal/cluster/elastic"
	"ndpcr/internal/metrics"
)

// FetchRank retrieves an arbitrary source rank's checkpoint payload from
// the global store, replaying incremental patch chains to the full state.
// Unlike Restore/RestoreID it never consults this node's local levels —
// another rank's NVM, partner copy, or erasure shards live on machines
// that no longer exist after an elastic reshape, so the store is the only
// authoritative source. It is the fetch primitive the elastic restore
// executor is built on. The returned level is always LevelIO on success.
func (n *Node) FetchRank(ctx context.Context, rank int, id uint64) ([]byte, Metadata, Level, error) {
	start := time.Now()
	data, meta, err := n.fetchFromIO(ctx, rank, id)
	level := LevelIO
	if err != nil {
		level = LevelNone
	} else {
		n.timelines.Finish(metrics.KindRestore, id)
	}
	n.recordRestore(level, start, err)
	return data, meta, level, err
}

// RestoreElastic executes one target's slice of an elastic restore plan:
// it fetches each planned (source rank, line, shard range), re-assembles
// the shards this target owns, and returns them as a fresh snapshot frame.
//
// Fetch routing: a Whole fetch of this node's own rank uses the full
// restore hierarchy (NVM → partner → erasure → I/O) unless storeOnly is
// set, so same-shape plans keep today's multilevel behavior; every other
// fetch is store-only via FetchRank. A source payload that fails frame
// decoding, or a shard range the payload cannot satisfy, is an error — the
// cluster treats it as an unreadable restart line and falls back to an
// older one.
func (n *Node) RestoreElastic(ctx context.Context, tp elastic.TargetPlan, storeOnly bool) ([]byte, Metadata, Level, error) {
	if len(tp.Fetches) == 1 && tp.Fetches[0].Whole {
		f := tp.Fetches[0]
		if f.SourceRank == n.cfg.Rank && !storeOnly {
			return n.RestoreID(ctx, f.Line)
		}
		return n.FetchRank(ctx, f.SourceRank, f.Line)
	}
	start := time.Now()
	data, meta, level, err := n.restoreElastic(ctx, tp, storeOnly)
	n.recordRestore(level, start, err)
	return data, meta, level, err
}

func (n *Node) restoreElastic(ctx context.Context, tp elastic.TargetPlan, storeOnly bool) ([]byte, Metadata, Level, error) {
	if len(tp.Fetches) == 0 {
		// M exceeds the global shard count: this target owns nothing and
		// restores the empty frame. Step -1 marks the metadata synthetic so
		// the cluster's step-consistency check skips it.
		return elastic.Encode(nil), Metadata{Job: n.cfg.Job, Rank: n.cfg.Rank, Step: -1}, LevelIO, nil
	}
	var shards [][]byte
	var meta Metadata
	for i, f := range tp.Fetches {
		if f.Whole {
			return nil, Metadata{}, LevelNone, fmt.Errorf(
				"node: elastic restore target %d: whole fetch mixed with shard fetches", tp.Target)
		}
		payload, m, err := n.fetchFromIO(ctx, f.SourceRank, f.Line)
		if err != nil {
			return nil, Metadata{}, LevelNone, fmt.Errorf(
				"node: elastic restore target %d: source %d: %w", tp.Target, f.SourceRank, err)
		}
		src, err := elastic.Decode(payload)
		if err != nil {
			return nil, Metadata{}, LevelNone, fmt.Errorf(
				"node: elastic restore target %d: source %d checkpoint %d: %w",
				tp.Target, f.SourceRank, f.Line, err)
		}
		if f.Lo < 0 || f.Hi > len(src) || f.Lo >= f.Hi {
			return nil, Metadata{}, LevelNone, fmt.Errorf(
				"node: elastic restore target %d: plan range [%d,%d) outside source %d's %d shards (stale shard metadata?)",
				tp.Target, f.Lo, f.Hi, f.SourceRank, len(src))
		}
		shards = append(shards, src[f.Lo:f.Hi]...)
		if i == 0 {
			meta = m
		} else if m.Step != meta.Step {
			return nil, Metadata{}, LevelNone, fmt.Errorf(
				"node: elastic restore target %d: source %d at step %d, source %d at step %d",
				tp.Target, tp.Fetches[0].SourceRank, meta.Step, f.SourceRank, m.Step)
		}
	}
	n.timelines.Finish(metrics.KindRestore, tp.Fetches[0].Line)
	meta.Rank = n.cfg.Rank
	meta.Shards = len(shards)
	return elastic.Encode(shards), meta, LevelIO, nil
}
