package node

import (
	"context"
	"errors"
	"testing"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

// Regression tests for the metadataFrom bug: strconv.Atoi errors were
// discarded, so corrupt metadata silently decoded as rank 0 / step 0 and a
// restore could resurrect the wrong rank's state at the wrong step.

func TestMetadataFromRejectsCorrupt(t *testing.T) {
	cases := []map[string]string{
		{"job": "j", "rank": "banana", "step": "3"},
		{"job": "j", "rank": "0", "step": ""},
		{"job": "j"}, // both fields missing entirely
	}
	for _, mm := range cases {
		if _, err := metadataFrom(mm); !errors.Is(err, ErrBadMetadata) {
			t.Errorf("metadataFrom(%v) err = %v, want ErrBadMetadata", mm, err)
		}
	}
	m, err := metadataFrom(map[string]string{"job": "j", "rank": "2", "step": "41"})
	if err != nil || m.Rank != 2 || m.Step != 41 || m.Job != "j" {
		t.Errorf("metadataFrom(valid) = %+v, %v", m, err)
	}
}

func TestRestoreRejectsCorruptIOMetadata(t *testing.T) {
	n, store := newNode(t, nil)
	// An I/O object whose step field fails to parse — a torn metadata write
	// on the global store.
	err := store.Put(context.Background(), iostore.Object{
		Key:      iostore.Key{Job: "job", Rank: 0, ID: 1},
		OrigSize: 4,
		Blocks:   [][]byte{[]byte("data")},
		Meta:     map[string]string{"job": "job", "rank": "0", "step": "4x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := n.Restore(context.Background()); !errors.Is(err, ErrBadMetadata) {
		t.Errorf("Restore() err = %v, want ErrBadMetadata (pre-fix: succeeded as step 0)", err)
	}
	errs := n.Metrics().Counter("ndpcr_node_metadata_errors_total", "")
	if errs.Value() == 0 {
		t.Error("metadata error not counted")
	}
}

func TestRestoreCorruptLocalMetadataFallsThrough(t *testing.T) {
	n, store := newNode(t, func(c *Config) { c.DisableNDP = true })
	// A readable local checkpoint whose metadata is torn: the restore must
	// treat it as a level miss and fall through to global I/O, not return
	// rank-0/step-0 state.
	err := n.Device().Put(nvm.Checkpoint{
		ID:   7,
		Data: []byte("torn"),
		Meta: map[string]string{"job": "job", "rank": "?", "step": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	good := snapshot(1000, 9)
	if err := store.Put(context.Background(), iostore.Object{
		Key:      iostore.Key{Job: "job", Rank: 0, ID: 6},
		OrigSize: int64(len(good)),
		Blocks:   [][]byte{good},
		Meta:     Metadata{Job: "job", Rank: 0, Step: 12}.toMap(6),
	}); err != nil {
		t.Fatal(err)
	}
	data, meta, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelIO || meta.Step != 12 || string(data) != string(good) {
		t.Errorf("restore served level=%v step=%d, want io/12", level, meta.Step)
	}
	errs := n.Metrics().Counter("ndpcr_node_metadata_errors_total", "")
	if errs.Value() != 1 {
		t.Errorf("metadata errors = %d, want 1", errs.Value())
	}
}
