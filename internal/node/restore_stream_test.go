package node

import (
	"bytes"
	"context"
	"testing"

	"ndpcr/internal/compress"
	"ndpcr/internal/metrics"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

// plainStore hides the block-read path of the wrapped store: StatBlocks
// declines every key, so a restore through it takes the monolithic
// whole-object fallback — what a store predating block streaming looked
// like.
type plainStore struct{ inner iostore.Backend }

func (p plainStore) Put(ctx context.Context, o iostore.Object) error { return p.inner.Put(ctx, o) }
func (p plainStore) PutBlock(ctx context.Context, key iostore.Key, meta iostore.Object, index int, block []byte) error {
	return p.inner.PutBlock(ctx, key, meta, index, block)
}
func (p plainStore) Delete(ctx context.Context, key iostore.Key) error {
	return p.inner.Delete(ctx, key)
}
func (p plainStore) Get(ctx context.Context, key iostore.Key) (iostore.Object, error) {
	return p.inner.Get(ctx, key)
}
func (p plainStore) Stat(ctx context.Context, key iostore.Key) (iostore.Object, bool, error) {
	return p.inner.Stat(ctx, key)
}
func (p plainStore) IDs(ctx context.Context, job string, rank int) ([]uint64, error) {
	return p.inner.IDs(ctx, job, rank)
}
func (p plainStore) Latest(ctx context.Context, job string, rank int) (uint64, bool, error) {
	return p.inner.Latest(ctx, job, rank)
}
func (p plainStore) Keys(ctx context.Context) ([]iostore.Key, error) { return p.inner.Keys(ctx) }
func (p plainStore) StatBlocks(ctx context.Context, key iostore.Key) (iostore.Object, int, bool, error) {
	return iostore.Object{}, 0, false, nil
}
func (p plainStore) GetBlock(ctx context.Context, key iostore.Key, index int) ([]byte, error) {
	return nil, iostore.ErrNotFound
}

func TestStreamedRestoreMatchesWholeObject(t *testing.T) {
	// The streamed restore (StatBlocks + per-block GetBlock feeding the
	// decompression pool) must reproduce exactly what the monolithic
	// whole-object fetch reproduces — same store, same checkpoint, one
	// node seeing BlockReader and one with it hidden.
	gz, _ := compress.Lookup("gzip", 1)
	n, store := newNode(t, func(c *Config) { c.Codec = gz })
	snap := snapshot(300_000, 7)
	id, err := n.Commit(snap, Metadata{Step: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)
	n.FailLocal()

	got, meta, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelIO || meta.Step != 3 || !bytes.Equal(got, snap) {
		t.Errorf("streamed restore: level=%v step=%d match=%v", level, meta.Step, bytes.Equal(got, snap))
	}
	if v := n.Metrics().Counter("ndpcr_node_streamed_restores_total", "").Value(); v == 0 {
		t.Error("restore did not take the streamed path despite a BlockReader store")
	}

	// Same store with BlockReader hidden: the fallback must produce the
	// identical snapshot and never count a streamed restore.
	n2, err := New(Config{Job: "job", Rank: 0, Store: plainStore{store}, DisableNDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	got2, meta2, level2, err := n2.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level2 != LevelIO || meta2.Step != 3 || !bytes.Equal(got2, snap) {
		t.Error("fallback restore diverged from streamed restore")
	}
	if v := n2.Metrics().Counter("ndpcr_node_streamed_restores_total", "").Value(); v != 0 {
		t.Errorf("fallback restore counted as streamed (%v)", v)
	}
}

func TestStreamedRestoreSmallPrefetchWindow(t *testing.T) {
	// A prefetch window smaller than the block count must still reassemble
	// correctly — the bound throttles, it must not truncate.
	gz, _ := compress.Lookup("gzip", 1)
	n, _ := newNode(t, func(c *Config) {
		c.Codec = gz
		c.PrefetchBlocks = 1
		c.RestoreWorkers = 2
	})
	snap := snapshot(200_000, 9) // ~49 blocks at 4096
	id, err := n.Commit(snap, Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)
	n.FailLocal()
	got, _, _, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, snap) {
		t.Error("window=1 streamed restore corrupted the snapshot")
	}
}

func TestFailedRestoreDiscardsTimeline(t *testing.T) {
	// Regression: a failed restore used to leave its timeline open forever
	// (Finish runs only on success, and DiscardOlder never fires for IDs
	// that never finish), so chaos runs with fallbacks accumulated
	// unbounded open-timeline residue. Failure paths must finish-or-discard.
	n, store := newNode(t, func(c *Config) { c.DisableNDP = true })
	key := iostore.Key{Job: "job", Rank: 0, ID: 5}
	obj := iostore.Object{
		Key:        key,
		Codec:      "gzip",
		CodecLevel: 1,
		OrigSize:   100,
		Blocks:     [][]byte{[]byte("this is not a gzip stream")},
		Meta:       Metadata{Job: "job", Rank: 0, Step: 2}.toMap(5),
	}
	if err := store.Put(context.Background(), obj); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := n.RestoreID(context.Background(), 5); err == nil {
		t.Fatal("corrupt checkpoint restored successfully")
	}
	if open := n.Timelines().Open(metrics.KindRestore); open != 0 {
		t.Errorf("failed restore leaked %d open restore timeline(s)", open)
	}
	// A later, successful restore of a good checkpoint must be unaffected.
	good := iostore.Key{Job: "job", Rank: 0, ID: 6}
	if err := store.Put(context.Background(), iostore.Object{
		Key:      good,
		OrigSize: 4,
		Blocks:   [][]byte{[]byte("fine")},
		Meta:     Metadata{Job: "job", Rank: 0, Step: 3}.toMap(6),
	}); err != nil {
		t.Fatal(err)
	}
	data, _, _, err := n.RestoreID(context.Background(), 6)
	if err != nil || string(data) != "fine" {
		t.Fatalf("good restore after failed one: %q, %v", data, err)
	}
	if open := n.Timelines().Open(metrics.KindRestore); open != 0 {
		t.Errorf("%d restore timeline(s) still open after a finished restore", open)
	}
}

func TestSetPartnerRejectsSelf(t *testing.T) {
	// A node buddying with itself would store its "redundant" copies on
	// the same NVM the partner level exists to survive losing.
	store := iostore.New(nvm.Pacer{})
	a, err := New(Config{Job: "j", Rank: 0, Store: store, DisableNDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Job: "j", Rank: 1, Store: store, DisableNDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.SetPartner(a); err == nil {
		t.Error("self-partnering accepted: phantom redundancy on the same device")
	}
	if err := a.SetPartner(b); err != nil {
		t.Errorf("distinct buddy rejected: %v", err)
	}
	if err := a.SetPartner(nil); err != nil {
		t.Errorf("unwiring rejected: %v", err)
	}
}
