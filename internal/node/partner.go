package node

import (
	"fmt"
	"sync"

	"ndpcr/internal/node/nvm"
)

// Partner-level checkpointing (§3.4): in addition to the local level, a
// checkpoint is redundantly stored in a *partner* compute node's local
// storage, so failures that destroy one node's NVM can still recover at
// local-storage speed from the buddy instead of falling back to global
// I/O. The cluster layer pairs nodes and routes copies; this file holds
// the per-node partner region and access methods.

// partnerRegion lazily allocates the device that stores other ranks'
// partner copies. It shares the node's NVM capacity configuration (a real
// deployment would partition one device; two Device values model the two
// regions).
type partnerRegion struct {
	once sync.Once
	dev  *nvm.Device
	err  error
}

func (n *Node) partnerDevice() (*nvm.Device, error) {
	n.partner.once.Do(func() {
		n.partner.dev, n.partner.err = nvm.NewDevice(n.cfg.NVMCapacity,
			nvm.Pacer{Bandwidth: n.cfg.NVMBandwidth, Sleep: n.cfg.Sleep})
	})
	return n.partner.dev, n.partner.err
}

// partnerKey packs (rank, checkpoint id) into the device's uint64 key
// space. Ranks are bounded far below 2^23 and ids below 2^40 in any
// realistic run; the composition is checked.
func partnerKey(rank int, id uint64) (uint64, error) {
	if rank < 0 || rank >= 1<<23 {
		return 0, fmt.Errorf("node: partner rank %d out of range", rank)
	}
	if id >= 1<<40 {
		return 0, fmt.Errorf("node: checkpoint id %d out of partner-key range", id)
	}
	return uint64(rank+1)<<40 | id, nil
}

// StorePartnerCopy stores another rank's checkpoint in this node's partner
// region. The cluster calls it on the buddy node during a coordinated
// checkpoint.
func (n *Node) StorePartnerCopy(fromRank int, id uint64, data []byte, meta Metadata) error {
	dev, err := n.partnerDevice()
	if err != nil {
		return err
	}
	key, err := partnerKey(fromRank, id)
	if err != nil {
		return err
	}
	m := meta.toMap(id)
	if err := dev.Put(nvm.Checkpoint{ID: key, Data: data, Meta: m}); err != nil {
		return fmt.Errorf("node: partner copy rank %d ckpt %d: %w", fromRank, id, err)
	}
	return nil
}

// PartnerCopy retrieves another rank's checkpoint from this node's partner
// region.
func (n *Node) PartnerCopy(fromRank int, id uint64) ([]byte, Metadata, error) {
	dev, err := n.partnerDevice()
	if err != nil {
		return nil, Metadata{}, err
	}
	key, err := partnerKey(fromRank, id)
	if err != nil {
		return nil, Metadata{}, err
	}
	ckpt, err := dev.Get(key)
	if err != nil {
		return nil, Metadata{}, err
	}
	meta, err := metadataFrom(ckpt.Meta)
	if err != nil {
		// restoreFromPartner treats any error as a level miss, so corrupt
		// partner metadata falls through the hierarchy instead of
		// restoring under a zero rank/step.
		n.mMetaErrs.Inc()
		return nil, Metadata{}, err
	}
	return ckpt.Data, meta, nil
}

// DiscardPartnerCopy removes another rank's checkpoint from this node's
// partner region (the abort path of a failed coordinated checkpoint).
// Discarding a copy that was never stored is a no-op.
func (n *Node) DiscardPartnerCopy(fromRank int, id uint64) {
	dev, err := n.partnerDevice()
	if err != nil {
		return
	}
	key, err := partnerKey(fromRank, id)
	if err != nil {
		return
	}
	dev.Discard(key)
}

// PartnerCopyIDs lists the checkpoint IDs this node's partner region holds
// for a given rank, ascending.
func (n *Node) PartnerCopyIDs(fromRank int) []uint64 {
	dev, err := n.partnerDevice()
	if err != nil {
		return nil
	}
	lo := uint64(fromRank+1) << 40
	hi := lo + (1 << 40)
	var out []uint64
	for _, key := range dev.IDs() {
		if key >= lo && key < hi {
			out = append(out, key-lo)
		}
	}
	return out
}

// SetPartner wires this node's restore path to the buddy holding its
// partner copies. The cluster layer calls it during assembly. A node can
// never buddy with itself: a self-copy lives on the same physical NVM the
// partner level exists to survive losing, so it would count as redundancy
// while protecting nothing. Passing nil unwires the level.
func (n *Node) SetPartner(buddy *Node) error {
	if buddy == n {
		return fmt.Errorf("node: rank %d cannot be its own partner (a self-copy shares the NVM it must outlive)", n.cfg.Rank)
	}
	n.mu.Lock()
	n.buddy = buddy
	n.mu.Unlock()
	return nil
}

// restoreFromPartner tries the buddy's partner region for this rank's
// checkpoint.
func (n *Node) restoreFromPartner(id uint64) ([]byte, Metadata, bool) {
	n.mu.Lock()
	buddy := n.buddy
	n.mu.Unlock()
	if buddy == nil {
		return nil, Metadata{}, false
	}
	data, meta, err := buddy.PartnerCopy(n.cfg.Rank, id)
	if err != nil {
		return nil, Metadata{}, false
	}
	return data, meta, true
}
