// Package ndp implements the near-data processor's drain engine (§4.2.2):
// a background worker coupled to the node's local NVM that moves committed
// checkpoints to global I/O, optionally compressing them on the way with a
// pool of NDP cores, overlapping compression with transmission by streaming
// fixed-size blocks through the NIC as they are produced.
package ndp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/delta"
	"ndpcr/internal/metrics"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nic"
	"ndpcr/internal/node/nvm"
)

// Config parameterizes the engine.
type Config struct {
	// Job and Rank identify this node's checkpoints in the global store.
	Job  string
	Rank int

	// Device is the node-local NVM holding committed checkpoints.
	Device *nvm.Device
	// Store is the global I/O store.
	Store iostore.Backend
	// Link is the NIC transmit path; nil sends directly to the store.
	Link *nic.Link

	// Codec compresses blocks before transmission; nil drains raw.
	Codec compress.Codec
	// Workers is the number of NDP cores compressing concurrently
	// (Table 3/4: 4 cores of gzip(1)). Minimum 1.
	Workers int
	// BlockSize is the streaming unit (§4.2.2's "small blocks"); zero
	// selects 1 MB.
	BlockSize int

	// Serialize disables the compress/transmit overlap: the whole
	// checkpoint is compressed before any block is sent (the §4.2.2
	// alternative, kept as an ablation).
	Serialize bool

	// SendWindow bounds how many store writes a drain keeps in flight at
	// once (default 4). The NIC transmit stays serial and in order — the
	// window overlaps the store's per-block write latency (a network round
	// trip on an iod transport), not the wire — and a drain acks only after
	// every outstanding write lands. 1 restores the fully serial sender.
	// Pair a window of W with an iod client of ~W lanes so the writes do
	// not re-serialize at the transport.
	SendWindow int

	// Incremental enables block-level incremental drains (the paper's
	// conclusion's proposed NDP extension): after a full checkpoint
	// reaches I/O, subsequent drains ship only the blocks that changed,
	// with a full checkpoint every FullEvery drains to bound restore
	// chains.
	Incremental bool
	// FullEvery bounds the patch-chain length (default 8).
	FullEvery int
	// DeltaBlockSize is the dedup granularity (default
	// delta.DefaultBlockSize).
	DeltaBlockSize int

	// OnError receives asynchronous drain errors; nil discards them.
	OnError func(error)

	// Tracker receives per-level durability watermarks as drains complete
	// (LevelStore) and failures exhaust their retries. Nil creates a
	// private tracker, owned (and closed) by the engine; a caller-supplied
	// tracker is shared — the node marks LevelNVM on commit and the
	// cluster marks partner/erasure levels — and the caller closes it.
	Tracker *Tracker

	// Gate, when non-nil, is acquired around every drain: the engine calls
	// it before picking a candidate (so no NVM lock is held while queued)
	// and invokes the returned release after the drain finishes. The
	// gateway uses it for QoS-weighted drain scheduling across tenants.
	// The context is canceled when the engine stops; a Gate error is
	// treated as "stopping" and ends the current drain sweep.
	Gate func(ctx context.Context) (release func(), err error)

	// MaxDrainAttempts bounds automatic retries of a failing drain. Zero
	// keeps the legacy behavior: no automatic retry, the next doorbell
	// re-attempts the newest checkpoint. With N > 0, a drain that fails N
	// times is permanently failed on the tracker (waiters get
	// ErrCheckpointFailed) and skipped thereafter.
	MaxDrainAttempts int
	// DrainRetryBackoff is the base delay between automatic retries
	// (default 50ms, growing linearly per attempt, capped at 2s).
	DrainRetryBackoff time.Duration

	// Metrics, when non-nil, receives drain counters and per-phase
	// latency/byte histograms.
	Metrics *metrics.Registry
	// Timelines, when non-nil, receives per-checkpoint phase spans
	// (pause → read → diff → compress → xmit → ack); the host records the
	// commit span into the same set, so a drained checkpoint's timeline
	// covers its whole trip through the pipeline.
	Timelines *metrics.TimelineSet
}

// Engine drains checkpoints in the background. Create with New, feed with
// Notify, stop with Close.
type Engine struct {
	cfg Config

	bell chan struct{}
	stop chan struct{}
	done chan struct{}

	// gate pauses NVM reads while the host commits (§4.2.1): the host
	// holds the write side for the duration of its NVM write.
	gate sync.RWMutex

	stopOnce sync.Once

	// tracker records per-level durability; ownTracker means the engine
	// created it and closes it on Close.
	tracker    *Tracker
	ownTracker bool
	// runCtx is canceled when the engine stops; it bounds Gate waits.
	runCtx    context.Context
	runCancel context.CancelFunc

	mu      sync.Mutex
	drained chan uint64 // completion events (buffered; drop-on-full)
	// discarded holds checkpoint IDs whose coordinated checkpoint aborted:
	// they must never be marked drained, and any blocks already shipped are
	// deleted. IDs are never reused after an abort (the cluster resyncs
	// counters forward), so entries are permanent and the set stays tiny.
	discarded map[uint64]bool
	// attempts counts consecutive drain failures per ID; failed holds IDs
	// that exhausted MaxDrainAttempts and must be skipped like discards.
	attempts map[uint64]int
	failed   map[uint64]bool

	// Incremental-drain state: the digest table of the last drained
	// checkpoint and the number of patches since the last full drain.
	// Only the run goroutine touches these.
	tbl       *delta.Table
	sinceFull int

	// Metrics (nil when Config.Metrics is nil).
	mDrains       *metrics.Counter
	mDrainErrors  *metrics.Counter
	mSkipped      *metrics.Counter
	mInFlight     *metrics.Gauge
	mDrainSecs    *metrics.Histogram
	mPauseWait    *metrics.Histogram
	mCompressSecs *metrics.Histogram
	mNICSendSecs  *metrics.Histogram
	mStoreSecs    *metrics.Histogram
	mInBytes      *metrics.Histogram
	mOutBytes     *metrics.Histogram
	mRetries      *metrics.Counter
	mPermFailures *metrics.Counter
}

// New creates and starts an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Device == nil || cfg.Store == nil {
		return nil, errors.New("ndp: Device and Store are required")
	}
	if cfg.Job == "" {
		return nil, errors.New("ndp: Job is required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 1 << 20
	}
	if cfg.SendWindow <= 0 {
		cfg.SendWindow = 4
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = 8
	}
	if cfg.DeltaBlockSize <= 0 {
		cfg.DeltaBlockSize = delta.DefaultBlockSize
	}
	e := &Engine{
		cfg:       cfg,
		bell:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		drained:   make(chan uint64, 64),
		discarded: make(map[uint64]bool),
		attempts:  make(map[uint64]int),
		failed:    make(map[uint64]bool),
	}
	e.tracker = cfg.Tracker
	if e.tracker == nil {
		e.tracker = NewTracker()
		e.ownTracker = true
	}
	e.runCtx, e.runCancel = context.WithCancel(context.Background())
	if r := cfg.Metrics; r != nil {
		e.mDrains = r.Counter("ndpcr_ndp_drains_total", "checkpoints fully drained to global I/O")
		e.mDrainErrors = r.Counter("ndpcr_ndp_drain_errors_total", "drains aborted by an error")
		e.mSkipped = r.Counter("ndpcr_ndp_skipped_total", "stale checkpoints skipped by the newest-first policy")
		e.mInFlight = r.Gauge("ndpcr_ndp_inflight_drains", "drains currently in progress")
		e.mDrainSecs = r.Histogram("ndpcr_ndp_drain_seconds", "wall time per drain", metrics.UnitSeconds)
		e.mPauseWait = r.Histogram("ndpcr_ndp_pause_wait_seconds", "time excluded from NVM by host commits", metrics.UnitSeconds)
		e.mCompressSecs = r.Histogram("ndpcr_ndp_compress_seconds", "busy time per compressed block", metrics.UnitSeconds)
		e.mNICSendSecs = r.Histogram("ndpcr_ndp_nic_send_seconds", "busy time per block on the NIC", metrics.UnitSeconds)
		e.mStoreSecs = r.Histogram("ndpcr_ndp_store_write_seconds", "busy time per block written to the store", metrics.UnitSeconds)
		e.mInBytes = r.Histogram("ndpcr_ndp_drain_in_bytes", "payload bytes entering a drain", metrics.UnitBytes)
		e.mOutBytes = r.Histogram("ndpcr_ndp_drain_out_bytes", "bytes shipped to global I/O per drain", metrics.UnitBytes)
		e.mRetries = r.Counter("ndpcr_ndp_drain_retries_total", "automatic drain retries scheduled after a failure")
		e.mPermFailures = r.Counter("ndpcr_ndp_drain_failures_total", "drains permanently failed after exhausting MaxDrainAttempts")
	}
	go e.run()
	return e, nil
}

// Notify rings the doorbell: a new checkpoint is available in NVM
// (§4.2.2's host-to-NDP notification). Never blocks.
func (e *Engine) Notify() {
	select {
	case e.bell <- struct{}{}:
	default:
	}
}

// Drained exposes completion events (checkpoint IDs) for observers; events
// are dropped if the observer lags.
func (e *Engine) Drained() <-chan uint64 { return e.drained }

// LastDrained returns the newest checkpoint ID fully on global I/O (the
// tracker's LevelStore watermark).
func (e *Engine) LastDrained() (uint64, bool) {
	return e.tracker.Watermark(LevelStore)
}

// Tracker exposes the engine's durability tracker: the single completion
// surface for drain progress (LevelStore watermark, per-ID failures).
func (e *Engine) Tracker() *Tracker { return e.tracker }

// WaitDrained blocks until checkpoint id (or anything newer) is fully on
// global I/O, the timeout elapses, or the engine stops; it reports whether
// the drain completed. Unlike polling LastDrained, the wait is woken by the
// drain completion itself.
func (e *Engine) WaitDrained(id uint64, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return e.WaitDrainedCtx(ctx, id)
}

// WaitDrainedCtx is WaitDrained bounded by a context instead of a plain
// timeout: a canceled caller (a gateway client that disconnected, a
// deadline) stops waiting immediately. It reports whether the drain
// completed before ctx ended or the engine stopped.
//
// The wait parks on the durability tracker, which removes abandoned
// waiters immediately (a churn of timed-out callers no longer accumulates
// until the next completion sweep). Legacy watermark semantics hold: a
// discarded or failed ID still reports true once a newer checkpoint has
// drained, because its state is superseded rather than pending.
func (e *Engine) WaitDrainedCtx(ctx context.Context, id uint64) bool {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-e.stop:
			cancel()
		case <-wctx.Done():
		}
	}()
	err := e.tracker.WaitDurableCtx(wctx, id, LevelStore)
	if err == nil {
		return true
	}
	// Failed/discarded IDs and stop-vs-completion races resolve against
	// the raw watermark: "id or newer on I/O" is this API's contract.
	if wm, ok := e.tracker.Watermark(LevelStore); ok && wm >= id {
		return true
	}
	return false
}

// Discard poisons a checkpoint ID whose coordinated checkpoint aborted: the
// engine will not start draining it, and a drain already in flight deletes
// whatever it shipped instead of acknowledging. The caller guarantees the
// ID is never committed again (the cluster resynchronizes checkpoint
// counters past it).
func (e *Engine) Discard(id uint64) {
	e.mu.Lock()
	e.discarded[id] = true
	e.mu.Unlock()
	// Waiters on the dead ID learn it will never arrive, instead of
	// blocking until their deadline.
	e.tracker.Fail(id, ErrDiscarded)
}

// isDiscarded reports whether id was poisoned by Discard.
func (e *Engine) isDiscarded(id uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.discarded[id]
}

// PauseNVM blocks NDP reads of the NVM; the host calls it around its own
// commits so the full device bandwidth serves the application (§4.2.1).
func (e *Engine) PauseNVM() { e.gate.Lock() }

// ResumeNVM re-enables NDP reads.
func (e *Engine) ResumeNVM() { e.gate.Unlock() }

// Close stops the engine, waiting for the current drain to abort. It is
// safe to call multiple times. An engine-owned tracker is closed too,
// releasing parked waiters with ErrStopped; a shared tracker stays open
// for its owner (the node) to close.
func (e *Engine) Close() {
	e.stopOnce.Do(func() {
		close(e.stop)
		e.runCancel()
	})
	<-e.done
	if e.ownTracker {
		e.tracker.Close()
	}
}

func (e *Engine) run() {
	defer close(e.done)
	for {
		select {
		case <-e.stop:
			return
		case <-e.bell:
		}
		// Drain until nothing newer remains; re-check after each drain so
		// a checkpoint committed mid-drain is picked up without another
		// doorbell edge.
		for {
			release, ok := e.acquireGate()
			if !ok {
				break // gate refused: the engine is stopping
			}
			id, ok := e.nextUndrained() // holds an eviction lock on id
			if !ok {
				release()
				break
			}
			err := e.drain(id)
			release()
			if err != nil {
				// A drain aborted by engine shutdown is expected, not an
				// error worth surfacing.
				select {
				case <-e.stop:
				default:
					e.reportError(err)
					if e.retryOrFail(id, err) {
						continue // permanently failed: skip it, look for other work
					}
				}
				break // back to the doorbell (a scheduled retry rings it)
			}
			e.mu.Lock()
			delete(e.attempts, id)
			e.mu.Unlock()
			select {
			case <-e.stop:
				return
			default:
			}
		}
	}
}

// acquireGate takes the configured drain-scheduling slot, if any. ok ==
// false means the gate refused (engine stopping) and the sweep should end.
func (e *Engine) acquireGate() (func(), bool) {
	if e.cfg.Gate == nil {
		return func() {}, true
	}
	release, err := e.cfg.Gate(e.runCtx)
	if err != nil {
		return nil, false
	}
	return release, true
}

// retryOrFail accounts one drain failure. It reports true when the ID was
// permanently failed (the sweep should continue to other work); false
// means either a retry was scheduled via the doorbell or legacy
// no-auto-retry mode is in effect.
func (e *Engine) retryOrFail(id uint64, cause error) bool {
	max := e.cfg.MaxDrainAttempts
	if max <= 0 {
		return false // legacy: wait for the next doorbell edge
	}
	e.mu.Lock()
	e.attempts[id]++
	n := e.attempts[id]
	if n >= max {
		delete(e.attempts, id)
		e.failed[id] = true
		e.mu.Unlock()
		e.tracker.Fail(id, cause)
		if e.mPermFailures != nil {
			e.mPermFailures.Inc()
		}
		return true
	}
	e.mu.Unlock()
	if e.mRetries != nil {
		e.mRetries.Inc()
	}
	backoff := e.cfg.DrainRetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	d := backoff * time.Duration(n)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	time.AfterFunc(d, e.Notify)
	return false
}

// nextUndrained picks the newest NVM checkpoint not yet on I/O — the
// "as frequently as possible" policy that skips stale intermediates when
// the drain is slower than the commit cadence (§6.2). On success the
// checkpoint is already pinned against eviction: a separate Latest-then-
// Lock sequence races with Put-driven circular-buffer eviction, which can
// reclaim the chosen checkpoint in the window between the two calls. The
// caller (drain) owns the lock and must release it.
func (e *Engine) nextUndrained() (uint64, bool) {
	latest, ok := e.cfg.Device.LatestLocked()
	if !ok {
		return 0, false
	}
	wm, drainedAny := e.tracker.Watermark(LevelStore)
	e.mu.Lock()
	stale := (drainedAny && latest.ID <= wm) || e.discarded[latest.ID] || e.failed[latest.ID]
	e.mu.Unlock()
	if stale {
		if err := e.cfg.Device.Unlock(latest.ID); err != nil {
			e.reportError(fmt.Errorf("ndp: unlock stale %d: %w", latest.ID, err))
		}
		return 0, false
	}
	return latest.ID, true
}

// drain moves one checkpoint to global I/O. The caller has already locked
// id in NVM; drain releases the lock.
func (e *Engine) drain(id uint64) error {
	dev := e.cfg.Device
	defer func() {
		if err := dev.Unlock(id); err != nil && !errors.Is(err, nvm.ErrNotFound) {
			e.reportError(fmt.Errorf("ndp: unlock %d: %w", id, err))
		}
	}()
	if e.isDiscarded(id) {
		// Poisoned between pick and drain: clean any shipped blocks. A
		// failed cleanup leaks a torn object — surface it.
		key := iostore.Key{Job: e.cfg.Job, Rank: e.cfg.Rank, ID: id}
		if derr := e.cfg.Store.Delete(context.Background(), key); derr != nil {
			e.reportError(fmt.Errorf("ndp: discard cleanup %d: %w", id, derr))
		}
		return nil
	}
	if e.mInFlight != nil {
		e.mInFlight.Inc()
		defer e.mInFlight.Dec()
	}
	drainStart := time.Now()

	// Read the checkpoint under the NVM gate so host commits exclude us.
	// The wait for the gate is the paper's §4.2.1 pause; the read itself is
	// the NDP's paced NVM access.
	e.gate.RLock()
	gateHeld := time.Now()
	e.span(id, metrics.PhasePause, drainStart, gateHeld)
	ckpt, err := dev.Get(id)
	e.gate.RUnlock()
	e.span(id, metrics.PhaseRead, gateHeld, time.Now())
	if err != nil {
		if errors.Is(err, nvm.ErrNotFound) {
			return nil
		}
		return err
	}

	key := iostore.Key{Job: e.cfg.Job, Rank: e.cfg.Rank, ID: id}
	meta := iostore.Object{
		OrigSize: int64(len(ckpt.Data)),
		Meta:     ckpt.Meta,
	}
	if e.cfg.Codec != nil {
		meta.Codec = e.cfg.Codec.Name()
		meta.CodecLevel = e.cfg.Codec.Level()
	}

	// Incremental drains ship a patch against the last drained checkpoint
	// instead of the full data (conclusion's proposed NDP optimization).
	payload := ckpt.Data
	var nextTbl *delta.Table
	if e.cfg.Incremental && e.tbl != nil && e.sinceFull < e.cfg.FullEvery {
		diffStart := time.Now()
		patch, t2, derr := delta.Diff(e.tbl, id, ckpt.Data)
		if derr != nil {
			return fmt.Errorf("ndp: diff %d: %w", id, derr)
		}
		payload = patch.Encode(nil)
		meta.DeltaBase = e.tbl.BaseID
		meta.OrigSize = int64(len(payload))
		nextTbl = t2
		e.span(id, metrics.PhaseDiff, diffStart, time.Now())
	} else if e.cfg.Incremental {
		diffStart := time.Now()
		nextTbl = delta.Snapshot(id, ckpt.Data, e.cfg.DeltaBlockSize)
		e.span(id, metrics.PhaseDiff, diffStart, time.Now())
	}
	if e.mPauseWait != nil {
		e.mPauseWait.ObserveDuration(gateHeld.Sub(drainStart))
		e.mInBytes.Observe(int64(len(payload)))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-e.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	var blocks [][]byte
	if e.cfg.Serialize {
		compressStart := time.Now()
		blocks, err = e.compressAll(payload)
		if e.cfg.Codec != nil {
			e.span(id, metrics.PhaseCompress, compressStart, time.Now())
		}
		if err == nil {
			xmitStart := time.Now()
			err = e.sendBlocks(ctx, key, meta, blocks, 0)
			e.span(id, metrics.PhaseXmit, xmitStart, time.Now())
		}
	} else {
		err = e.pipeline(ctx, id, key, meta, payload)
	}
	if err != nil {
		// A torn object must not be restorable. The delete runs on a fresh
		// context: the drain ctx may already be canceled (engine shutdown),
		// but the cleanup must still be attempted.
		if derr := e.cfg.Store.Delete(context.Background(), key); derr != nil {
			e.reportError(fmt.Errorf("ndp: abort cleanup %d: %w", id, derr))
		}
		if e.mDrainErrors != nil {
			e.mDrainErrors.Inc()
		}
		return fmt.Errorf("ndp: drain %d: %w", id, err)
	}
	ackStart := time.Now()
	if e.isDiscarded(id) {
		// The coordinated checkpoint for this ID aborted while the drain
		// was in flight: the shipped object is poison, not progress.
		if derr := e.cfg.Store.Delete(context.Background(), key); derr != nil {
			e.reportError(fmt.Errorf("ndp: discard cleanup %d: %w", id, derr))
		}
		return nil
	}
	if e.cfg.Incremental {
		if meta.DeltaBase != 0 {
			e.sinceFull++
		} else {
			e.sinceFull = 0
		}
		e.tbl = nextTbl
	}

	skipped := uint64(0)
	if wm, has := e.tracker.Watermark(LevelStore); has && id > wm+1 {
		skipped = id - wm - 1
	}
	e.tracker.MarkDurable(LevelStore, id)
	select {
	case e.drained <- id:
	default:
	}
	e.span(id, metrics.PhaseAck, ackStart, time.Now())
	if ts := e.cfg.Timelines; ts != nil {
		ts.Finish(metrics.KindCheckpoint, id)
		ts.DiscardOlder(metrics.KindCheckpoint, id)
	}
	if e.mDrains != nil {
		e.mDrains.Inc()
		e.mSkipped.Add(skipped)
		e.mDrainSecs.ObserveSince(drainStart)
		var out int64
		for _, b := range blocks {
			out += int64(len(b))
		}
		if e.cfg.Serialize {
			e.mOutBytes.Observe(out)
		}
	}
	return nil
}

// span records one timeline phase when timelines are enabled.
func (e *Engine) span(id uint64, phase metrics.Phase, start, end time.Time) {
	if ts := e.cfg.Timelines; ts != nil {
		ts.Observe(metrics.KindCheckpoint, id, phase, start, end)
	}
}

// splitBlocks cuts data into BlockSize units (the last may be short).
func (e *Engine) splitBlocks(data []byte) [][]byte {
	bs := e.cfg.BlockSize
	n := (len(data) + bs - 1) / bs
	if n == 0 {
		return [][]byte{nil}
	}
	out := make([][]byte, 0, n)
	for off := 0; off < len(data); off += bs {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out
}

// compressAll compresses every block before any transmission (Serialize
// mode).
func (e *Engine) compressAll(data []byte) ([][]byte, error) {
	raw := e.splitBlocks(data)
	if e.cfg.Codec == nil {
		return raw, nil
	}
	out := make([][]byte, len(raw))
	errs := make([]error, len(raw))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				out[i], errs[i] = e.cfg.Codec.Compress(nil, raw[i])
				if e.mCompressSecs != nil {
					e.mCompressSecs.ObserveSince(t0)
				}
			}
		}()
	}
	for i := range raw {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sender ships one drain's blocks: NIC transmission is serial and in order
// (one wire), while store writes run asynchronously behind it, bounded by
// SendWindow. PutBlock writes by index, so out-of-order completion of the
// windowed writes cannot tear the object; wait() is the ack barrier — no
// drain acknowledges until every outstanding write has landed.
type sender struct {
	e     *Engine
	key   iostore.Key
	meta  iostore.Object
	sem   chan struct{}
	wg    sync.WaitGroup
	clock *spanClock // optional xmit envelope across NIC + store spans

	errMu sync.Mutex
	err   error
}

func (e *Engine) newSender(key iostore.Key, meta iostore.Object, clock *spanClock) *sender {
	return &sender{e: e, key: key, meta: meta, sem: make(chan struct{}, e.cfg.SendWindow), clock: clock}
}

func (s *sender) firstErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *sender) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// send transmits one block: the NIC send runs on the caller (serial, in
// order), the store write in a windowed goroutine. A previously failed
// write fails fast here so the drain aborts instead of streaming into a
// broken store.
func (s *sender) send(ctx context.Context, idx int, b []byte) error {
	if err := s.firstErr(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	e := s.e
	if e.cfg.Link != nil {
		t0 := time.Now()
		if err := e.cfg.Link.Send(ctx, b); err != nil {
			return err
		}
		if e.mNICSendSecs != nil {
			e.mNICSendSecs.ObserveSince(t0)
		}
		if s.clock != nil {
			s.clock.mark(t0, time.Now())
		}
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.wg.Add(1)
	go func() {
		defer func() {
			<-s.sem
			s.wg.Done()
		}()
		t1 := time.Now()
		if err := e.cfg.Store.PutBlock(ctx, s.key, s.meta, idx, b); err != nil {
			s.setErr(err)
			return
		}
		if e.mStoreSecs != nil {
			e.mStoreSecs.ObserveSince(t1)
		}
		if s.clock != nil {
			s.clock.mark(t1, time.Now())
		}
	}()
	return nil
}

// wait blocks until every in-flight store write finishes and returns the
// first write error, if any.
func (s *sender) wait() error {
	s.wg.Wait()
	return s.firstErr()
}

// sendBlocks transmits blocks in order through the NIC to the store,
// finalizing the object metadata on completion. Store writes overlap up to
// SendWindow deep; the call returns only once all of them have landed, so
// callers keep the strict completed-means-durable semantics.
func (e *Engine) sendBlocks(ctx context.Context, key iostore.Key, meta iostore.Object, blocks [][]byte, startIdx int) error {
	s := e.newSender(key, meta, nil)
	defer s.wg.Wait() // never return with writes still in flight
	for i, b := range blocks {
		if err := s.send(ctx, startIdx+i, b); err != nil {
			return err
		}
	}
	return s.wait()
}

// spanClock tracks the wall-clock envelope of a set of overlapping
// operations (the pipeline's compression workers, or its in-order sender):
// the earliest mark start and the latest mark end.
type spanClock struct {
	mu     sync.Mutex
	marked bool
	start  time.Time
	end    time.Time
}

func (c *spanClock) mark(start, end time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.marked || start.Before(c.start) {
		c.start = start
	}
	if !c.marked || end.After(c.end) {
		c.end = end
	}
	c.marked = true
}

// snapshot reads the envelope under the lock: on an early pipeline return
// (context cancel, send error) workers may still be marking concurrently.
func (c *spanClock) snapshot() (start, end time.Time, marked bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.start, c.end, c.marked
}

// pipeline overlaps block compression (Workers cores) with in-order
// transmission: block i+1 compresses while block i is on the wire. The
// compress and xmit timeline spans are wall-clock envelopes across workers,
// so on an overlapped drain the timeline's Sum exceeds its Total by exactly
// the realized overlap.
func (e *Engine) pipeline(ctx context.Context, id uint64, key iostore.Key, meta iostore.Object, data []byte) error {
	raw := e.splitBlocks(data)
	if e.cfg.Codec == nil {
		xmitStart := time.Now()
		err := e.sendBlocks(ctx, key, meta, raw, 0)
		e.span(id, metrics.PhaseXmit, xmitStart, time.Now())
		if err == nil && e.mOutBytes != nil {
			var out int64
			for _, b := range raw {
				out += int64(len(b))
			}
			e.mOutBytes.Observe(out)
		}
		return err
	}

	var compressClock, xmitClock spanClock
	defer func() {
		if start, end, marked := compressClock.snapshot(); marked {
			e.span(id, metrics.PhaseCompress, start, end)
		}
		if start, end, marked := xmitClock.snapshot(); marked {
			e.span(id, metrics.PhaseXmit, start, end)
		}
	}()

	type result struct {
		idx  int
		data []byte
		err  error
	}
	jobs := make(chan int)
	results := make(chan result, e.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				c, err := e.cfg.Codec.Compress(nil, raw[i])
				compressClock.mark(t0, time.Now())
				if e.mCompressSecs != nil {
					e.mCompressSecs.ObserveSince(t0)
				}
				select {
				case results <- result{i, c, err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range raw {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder and hand off to the windowed sender as blocks complete: the
	// NIC sees blocks strictly in order, while up to SendWindow store
	// writes ride behind it concurrently.
	snd := e.newSender(key, meta, &xmitClock)
	defer snd.wg.Wait() // never return with writes still in flight
	pending := make(map[int][]byte, e.cfg.Workers)
	next := 0
	var out int64
	for next < len(raw) {
		var r result
		var ok bool
		select {
		case r, ok = <-results:
		case <-ctx.Done():
			return ctx.Err()
		}
		if !ok {
			return fmt.Errorf("ndp: pipeline ended with %d/%d blocks sent", next, len(raw))
		}
		if r.err != nil {
			return r.err
		}
		pending[r.idx] = r.data
		for {
			b, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			if err := snd.send(ctx, next, b); err != nil {
				return err
			}
			out += int64(len(b))
			next++
		}
	}
	if err := snd.wait(); err != nil {
		return err
	}
	if e.mOutBytes != nil {
		e.mOutBytes.Observe(out)
	}
	return nil
}

func (e *Engine) reportError(err error) {
	if e.cfg.OnError != nil && err != nil {
		e.cfg.OnError(err)
	}
}
