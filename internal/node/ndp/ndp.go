// Package ndp implements the near-data processor's drain engine (§4.2.2):
// a background worker coupled to the node's local NVM that moves committed
// checkpoints to global I/O, optionally compressing them on the way with a
// pool of NDP cores, overlapping compression with transmission by streaming
// fixed-size blocks through the NIC as they are produced.
package ndp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ndpcr/internal/compress"
	"ndpcr/internal/delta"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nic"
	"ndpcr/internal/node/nvm"
)

// Config parameterizes the engine.
type Config struct {
	// Job and Rank identify this node's checkpoints in the global store.
	Job  string
	Rank int

	// Device is the node-local NVM holding committed checkpoints.
	Device *nvm.Device
	// Store is the global I/O store.
	Store iostore.API
	// Link is the NIC transmit path; nil sends directly to the store.
	Link *nic.Link

	// Codec compresses blocks before transmission; nil drains raw.
	Codec compress.Codec
	// Workers is the number of NDP cores compressing concurrently
	// (Table 3/4: 4 cores of gzip(1)). Minimum 1.
	Workers int
	// BlockSize is the streaming unit (§4.2.2's "small blocks"); zero
	// selects 1 MB.
	BlockSize int

	// Serialize disables the compress/transmit overlap: the whole
	// checkpoint is compressed before any block is sent (the §4.2.2
	// alternative, kept as an ablation).
	Serialize bool

	// Incremental enables block-level incremental drains (the paper's
	// conclusion's proposed NDP extension): after a full checkpoint
	// reaches I/O, subsequent drains ship only the blocks that changed,
	// with a full checkpoint every FullEvery drains to bound restore
	// chains.
	Incremental bool
	// FullEvery bounds the patch-chain length (default 8).
	FullEvery int
	// DeltaBlockSize is the dedup granularity (default
	// delta.DefaultBlockSize).
	DeltaBlockSize int

	// OnError receives asynchronous drain errors; nil discards them.
	OnError func(error)
}

// Engine drains checkpoints in the background. Create with New, feed with
// Notify, stop with Close.
type Engine struct {
	cfg Config

	bell chan struct{}
	stop chan struct{}
	done chan struct{}

	// gate pauses NVM reads while the host commits (§4.2.1): the host
	// holds the write side for the duration of its NVM write.
	gate sync.RWMutex

	stopOnce sync.Once

	mu          sync.Mutex
	lastDrained uint64
	hasDrained  bool
	drained     chan uint64 // completion events (buffered; drop-on-full)

	// Incremental-drain state: the digest table of the last drained
	// checkpoint and the number of patches since the last full drain.
	// Only the run goroutine touches these.
	tbl       *delta.Table
	sinceFull int
}

// New creates and starts an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Device == nil || cfg.Store == nil {
		return nil, errors.New("ndp: Device and Store are required")
	}
	if cfg.Job == "" {
		return nil, errors.New("ndp: Job is required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 1 << 20
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = 8
	}
	if cfg.DeltaBlockSize <= 0 {
		cfg.DeltaBlockSize = delta.DefaultBlockSize
	}
	e := &Engine{
		cfg:     cfg,
		bell:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		drained: make(chan uint64, 64),
	}
	go e.run()
	return e, nil
}

// Notify rings the doorbell: a new checkpoint is available in NVM
// (§4.2.2's host-to-NDP notification). Never blocks.
func (e *Engine) Notify() {
	select {
	case e.bell <- struct{}{}:
	default:
	}
}

// Drained exposes completion events (checkpoint IDs) for observers; events
// are dropped if the observer lags.
func (e *Engine) Drained() <-chan uint64 { return e.drained }

// LastDrained returns the newest checkpoint ID fully on global I/O.
func (e *Engine) LastDrained() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastDrained, e.hasDrained
}

// PauseNVM blocks NDP reads of the NVM; the host calls it around its own
// commits so the full device bandwidth serves the application (§4.2.1).
func (e *Engine) PauseNVM() { e.gate.Lock() }

// ResumeNVM re-enables NDP reads.
func (e *Engine) ResumeNVM() { e.gate.Unlock() }

// Close stops the engine, waiting for the current drain to abort. It is
// safe to call multiple times.
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

func (e *Engine) run() {
	defer close(e.done)
	for {
		select {
		case <-e.stop:
			return
		case <-e.bell:
		}
		// Drain until nothing newer remains; re-check after each drain so
		// a checkpoint committed mid-drain is picked up without another
		// doorbell edge.
		for {
			id, ok := e.nextUndrained()
			if !ok {
				break
			}
			if err := e.drain(id); err != nil {
				// A drain aborted by engine shutdown is expected, not an
				// error worth surfacing.
				select {
				case <-e.stop:
				default:
					e.reportError(err)
				}
				break // back to the doorbell; transient store errors retry then
			}
			select {
			case <-e.stop:
				return
			default:
			}
		}
	}
}

// nextUndrained picks the newest NVM checkpoint not yet on I/O — the
// "as frequently as possible" policy that skips stale intermediates when
// the drain is slower than the commit cadence (§6.2).
func (e *Engine) nextUndrained() (uint64, bool) {
	latest, ok := e.cfg.Device.Latest()
	if !ok {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hasDrained && latest.ID <= e.lastDrained {
		return 0, false
	}
	return latest.ID, true
}

// drain moves one checkpoint to global I/O.
func (e *Engine) drain(id uint64) error {
	dev := e.cfg.Device
	if err := dev.Lock(id); err != nil {
		if errors.Is(err, nvm.ErrNotFound) {
			return nil // evicted or wiped before we got to it; not an error
		}
		return err
	}
	defer func() {
		if err := dev.Unlock(id); err != nil && !errors.Is(err, nvm.ErrNotFound) {
			e.reportError(fmt.Errorf("ndp: unlock %d: %w", id, err))
		}
	}()

	// Read the checkpoint under the NVM gate so host commits exclude us.
	e.gate.RLock()
	ckpt, err := dev.Get(id)
	e.gate.RUnlock()
	if err != nil {
		if errors.Is(err, nvm.ErrNotFound) {
			return nil
		}
		return err
	}

	key := iostore.Key{Job: e.cfg.Job, Rank: e.cfg.Rank, ID: id}
	meta := iostore.Object{
		OrigSize: int64(len(ckpt.Data)),
		Meta:     ckpt.Meta,
	}
	if e.cfg.Codec != nil {
		meta.Codec = e.cfg.Codec.Name()
		meta.CodecLevel = e.cfg.Codec.Level()
	}

	// Incremental drains ship a patch against the last drained checkpoint
	// instead of the full data (conclusion's proposed NDP optimization).
	payload := ckpt.Data
	var nextTbl *delta.Table
	if e.cfg.Incremental && e.tbl != nil && e.sinceFull < e.cfg.FullEvery {
		patch, t2, derr := delta.Diff(e.tbl, id, ckpt.Data)
		if derr != nil {
			return fmt.Errorf("ndp: diff %d: %w", id, derr)
		}
		payload = patch.Encode(nil)
		meta.DeltaBase = e.tbl.BaseID
		meta.OrigSize = int64(len(payload))
		nextTbl = t2
	} else if e.cfg.Incremental {
		nextTbl = delta.Snapshot(id, ckpt.Data, e.cfg.DeltaBlockSize)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-e.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	var blocks [][]byte
	if e.cfg.Serialize {
		blocks, err = e.compressAll(payload)
		if err == nil {
			err = e.sendBlocks(ctx, key, meta, blocks, 0)
		}
	} else {
		err = e.pipeline(ctx, key, meta, payload)
	}
	if err != nil {
		// A torn object must not be restorable.
		e.cfg.Store.Delete(key)
		return fmt.Errorf("ndp: drain %d: %w", id, err)
	}
	if e.cfg.Incremental {
		if meta.DeltaBase != 0 {
			e.sinceFull++
		} else {
			e.sinceFull = 0
		}
		e.tbl = nextTbl
	}

	e.mu.Lock()
	if !e.hasDrained || id > e.lastDrained {
		e.lastDrained = id
		e.hasDrained = true
	}
	e.mu.Unlock()
	select {
	case e.drained <- id:
	default:
	}
	return nil
}

// splitBlocks cuts data into BlockSize units (the last may be short).
func (e *Engine) splitBlocks(data []byte) [][]byte {
	bs := e.cfg.BlockSize
	n := (len(data) + bs - 1) / bs
	if n == 0 {
		return [][]byte{nil}
	}
	out := make([][]byte, 0, n)
	for off := 0; off < len(data); off += bs {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out
}

// compressAll compresses every block before any transmission (Serialize
// mode).
func (e *Engine) compressAll(data []byte) ([][]byte, error) {
	raw := e.splitBlocks(data)
	if e.cfg.Codec == nil {
		return raw, nil
	}
	out := make([][]byte, len(raw))
	errs := make([]error, len(raw))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = e.cfg.Codec.Compress(nil, raw[i])
			}
		}()
	}
	for i := range raw {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sendBlocks transmits blocks in order through the NIC to the store,
// finalizing the object metadata on completion.
func (e *Engine) sendBlocks(ctx context.Context, key iostore.Key, meta iostore.Object, blocks [][]byte, startIdx int) error {
	for i, b := range blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.cfg.Link != nil {
			if err := e.cfg.Link.Send(ctx, b); err != nil {
				return err
			}
		}
		if err := e.cfg.Store.PutBlock(key, meta, startIdx+i, b); err != nil {
			return err
		}
	}
	return nil
}

// pipeline overlaps block compression (Workers cores) with in-order
// transmission: block i+1 compresses while block i is on the wire.
func (e *Engine) pipeline(ctx context.Context, key iostore.Key, meta iostore.Object, data []byte) error {
	raw := e.splitBlocks(data)
	if e.cfg.Codec == nil {
		return e.sendBlocks(ctx, key, meta, raw, 0)
	}

	type result struct {
		idx  int
		data []byte
		err  error
	}
	jobs := make(chan int)
	results := make(chan result, e.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c, err := e.cfg.Codec.Compress(nil, raw[i])
				select {
				case results <- result{i, c, err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range raw {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder and transmit as blocks complete.
	pending := make(map[int][]byte, e.cfg.Workers)
	next := 0
	for next < len(raw) {
		var r result
		var ok bool
		select {
		case r, ok = <-results:
		case <-ctx.Done():
			return ctx.Err()
		}
		if !ok {
			return fmt.Errorf("ndp: pipeline ended with %d/%d blocks sent", next, len(raw))
		}
		if r.err != nil {
			return r.err
		}
		pending[r.idx] = r.data
		for {
			b, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			if err := e.sendBlocks(ctx, key, meta, [][]byte{b}, next); err != nil {
				return err
			}
			next++
		}
	}
	return nil
}

func (e *Engine) reportError(err error) {
	if e.cfg.OnError != nil && err != nil {
		e.cfg.OnError(err)
	}
}
