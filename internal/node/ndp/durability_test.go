package ndp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

func TestTrackerWatermarkSemantics(t *testing.T) {
	tr := NewTracker()
	defer tr.Close()

	if _, ok := tr.Watermark(LevelStore); ok {
		t.Error("fresh tracker reported a store watermark")
	}
	if tr.DurableAt(1, LevelNVM) {
		t.Error("fresh tracker reported 1 NVM-durable")
	}
	tr.MarkDurable(LevelNVM, 3)
	if !tr.DurableAt(3, LevelNVM) || !tr.DurableAt(1, LevelNVM) {
		t.Error("watermark 3 must cover 3 and the superseded 1")
	}
	if tr.DurableAt(4, LevelNVM) {
		t.Error("watermark 3 reported 4 durable")
	}
	if tr.DurableAt(3, LevelStore) {
		t.Error("NVM mark leaked into the store level")
	}
	// Watermarks never regress.
	tr.MarkDurable(LevelNVM, 2)
	if wm, _ := tr.Watermark(LevelNVM); wm != 3 {
		t.Errorf("watermark regressed to %d", wm)
	}
}

func TestTrackerWaitSatisfiedByNewerMark(t *testing.T) {
	tr := NewTracker()
	defer tr.Close()
	done := make(chan error, 1)
	go func() { done <- tr.WaitDurableCtx(context.Background(), 2, LevelStore) }()
	time.Sleep(2 * time.Millisecond)
	tr.MarkDurable(LevelStore, 5) // skips 2; superseded counts as durable
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("wait on superseded ID: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter on superseded ID never woke")
	}
}

func TestTrackerFailWinsOverWatermark(t *testing.T) {
	tr := NewTracker()
	defer tr.Close()
	cause := errors.New("boom")
	tr.Fail(7, cause)
	tr.MarkDurable(LevelStore, 9)
	if tr.DurableAt(7, LevelStore) {
		t.Error("failed ID reported durable because the watermark passed it")
	}
	err := tr.WaitDurableCtx(context.Background(), 7, LevelStore)
	if !errors.Is(err, ErrCheckpointFailed) {
		t.Errorf("wait on failed ID: got %v, want ErrCheckpointFailed", err)
	}
	if got := tr.FailedErr(7); got == nil {
		t.Error("FailedErr lost the cause")
	}
	// But unrelated IDs stay durable.
	if !tr.DurableAt(9, LevelStore) {
		t.Error("watermark 9 not durable")
	}
}

func TestTrackerFailWakesParkedWaiters(t *testing.T) {
	tr := NewTracker()
	defer tr.Close()
	done := make(chan error, 1)
	go func() { done <- tr.WaitDurableCtx(context.Background(), 4, LevelPartner) }()
	time.Sleep(2 * time.Millisecond)
	tr.Fail(4, errors.New("propagation aborted"))
	select {
	case err := <-done:
		if !errors.Is(err, ErrCheckpointFailed) {
			t.Errorf("parked waiter got %v, want ErrCheckpointFailed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fail did not wake the parked waiter")
	}
}

func TestTrackerCloseUnblocksWaiters(t *testing.T) {
	tr := NewTracker()
	done := make(chan error, 1)
	go func() { done <- tr.WaitDurableCtx(context.Background(), 1, LevelStore) }()
	time.Sleep(2 * time.Millisecond)
	tr.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("close delivered %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the waiter")
	}
	if err := tr.WaitDurableCtx(context.Background(), 2, LevelStore); !errors.Is(err, ErrStopped) {
		t.Errorf("wait after close: %v", err)
	}
}

// TestTrackerAbandonedWaitersDoNotLeak is the regression test for the
// WaitDrainedCtx waiter leak: a wait abandoned by context cancellation must
// remove its own entry immediately, not linger until the next drain sweep.
// It churns many short-deadline waiters against a tracker that never
// completes anything and asserts the waiter set drains to zero.
func TestTrackerAbandonedWaitersDoNotLeak(t *testing.T) {
	tr := NewTracker()
	defer tr.Close()
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5+1)*time.Millisecond)
			defer cancel()
			err := tr.WaitDurableCtx(ctx, uint64(i+1), LevelStore)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("waiter %d: got %v, want deadline exceeded", i, err)
			}
		}(i)
	}
	wg.Wait()
	if n := tr.waiterCount(); n != 0 {
		t.Fatalf("%d abandoned waiters leaked in the tracker", n)
	}
}

// TestEngineWaitDrainedCtxAbandonDoesNotLeak drives the same leak through
// the engine surface: WaitDrainedCtx callers that give up against a drain
// that cannot complete (empty device, nothing to drain) must leave no
// waiter behind.
func TestEngineWaitDrainedCtxAbandonDoesNotLeak(t *testing.T) {
	_, _, eng := testRig(t, nil, false)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%4+1)*time.Millisecond)
			defer cancel()
			if eng.WaitDrainedCtx(ctx, uint64(i+100)) {
				t.Errorf("WaitDrainedCtx(%d) succeeded with nothing committed", i+100)
			}
		}(i)
	}
	wg.Wait()
	if n := eng.Tracker().waiterCount(); n != 0 {
		t.Fatalf("%d abandoned WaitDrainedCtx waiters leaked", n)
	}
}

// TestEngineStopDuringWaitReportsDurableDrain covers the shutdown
// misreport: when the engine stops in the same instant a drain completes,
// the waiter must see the completed drain, not a false timeout.
func TestEngineStopDuringWaitReportsDurableDrain(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(1000)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	waitDrain(t, eng, 1)
	// Stop the engine, then ask: the tracker remembers the watermark, so
	// even a wait that races the stop channel must report success.
	eng.Close()
	if !eng.WaitDrainedCtx(context.Background(), 1) {
		t.Error("drained checkpoint reported not-durable after engine stop")
	}
	if err := eng.Tracker().WaitDurableCtx(context.Background(), 1, LevelStore); err != nil {
		t.Errorf("tracker wait after stop on drained ID: %v", err)
	}
}

func TestEngineDrainRetryThenPermanentFail(t *testing.T) {
	dev, err := nvm.NewDevice(64<<20, nvm.Pacer{})
	if err != nil {
		t.Fatal(err)
	}
	store := failingStore{Backend: iostore.New(nvm.Pacer{})}
	var mu sync.Mutex
	var errs int
	eng, err := New(Config{
		Job: "job", Rank: 0,
		Device: dev, Store: store,
		Workers: 2, BlockSize: 4096,
		MaxDrainAttempts:  3,
		DrainRetryBackoff: time.Millisecond,
		OnError: func(error) {
			mu.Lock()
			errs++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(1000)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	werr := eng.Tracker().WaitDurableCtx(testCtx(t, 10*time.Second), 1, LevelStore)
	if !errors.Is(werr, ErrCheckpointFailed) {
		t.Fatalf("exhausted retries: got %v, want ErrCheckpointFailed", werr)
	}
	mu.Lock()
	n := errs
	mu.Unlock()
	if n < 3 {
		t.Errorf("engine reported %d errors, want >= MaxDrainAttempts (3)", n)
	}
	// The poisoned ID must not wedge the pipeline for later commits —
	// but the store still fails, so just confirm the engine keeps running.
	if eng.Tracker().FailedErr(1) == nil {
		t.Error("permanently failed drain not recorded on the tracker")
	}
}

func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// failingStore rejects every write; all other ops fall through to the
// embedded in-process store.
type failingStore struct{ iostore.Backend }

func (failingStore) Put(ctx context.Context, o iostore.Object) error {
	return errors.New("store down")
}

func (failingStore) PutBlock(ctx context.Context, key iostore.Key, meta iostore.Object, index int, block []byte) error {
	return errors.New("store down")
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, lvl := range []Level{LevelNVM, LevelPartner, LevelErasure, LevelStore} {
		got, err := ParseLevel(lvl.String())
		if err != nil || got != lvl {
			t.Errorf("ParseLevel(%q) = %v, %v", lvl.String(), got, err)
		}
	}
	if _, err := ParseLevel("tape"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
	for alias, want := range map[string]Level{"local": LevelNVM, "io": LevelStore} {
		if got, err := ParseLevel(alias); err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
}
