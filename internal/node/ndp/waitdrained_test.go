package ndp

import (
	"context"
	"testing"
	"time"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

func TestWaitDrainedCompletes(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(5000)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	if !eng.WaitDrained(1, 5*time.Second) {
		t.Fatal("WaitDrained(1) reported timeout")
	}
	// Fast path: already drained, no waiter parked.
	if !eng.WaitDrained(1, time.Millisecond) {
		t.Error("WaitDrained(1) false after the drain completed")
	}
}

func TestWaitDrainedSatisfiedByNewerDrain(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	// Both checkpoints are resident before the bell rings, so the engine
	// skips straight to 2; the waiter on 1 must still be released.
	for id := uint64(1); id <= 2; id++ {
		if err := dev.Put(nvm.Checkpoint{ID: id, Data: ckptData(1000)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan bool, 1)
	go func() { done <- eng.WaitDrained(1, 5*time.Second) }()
	eng.Notify()
	if ok := <-done; !ok {
		t.Error("waiter on skipped checkpoint 1 not released by the drain of 2")
	}
}

func TestWaitDrainedTimesOut(t *testing.T) {
	_, _, eng := testRig(t, nil, false)
	start := time.Now()
	if eng.WaitDrained(1, 20*time.Millisecond) {
		t.Fatal("WaitDrained succeeded with nothing committed")
	}
	if time.Since(start) > time.Second {
		t.Error("timeout wait overshot")
	}
}

func TestWaitDrainedUnblocksOnClose(t *testing.T) {
	_, _, eng := testRig(t, nil, false)
	done := make(chan bool, 1)
	go func() { done <- eng.WaitDrained(42, time.Minute) }()
	time.Sleep(5 * time.Millisecond) // let the waiter park
	eng.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("WaitDrained reported success after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDrained still blocked after Close")
	}
}

func TestDiscardedCheckpointNeverDrains(t *testing.T) {
	dev, store, eng := testRig(t, nil, false)
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(1000)}); err != nil {
		t.Fatal(err)
	}
	eng.Discard(1)
	eng.Notify()
	if eng.WaitDrained(1, 50*time.Millisecond) {
		t.Fatal("discarded checkpoint was acknowledged as drained")
	}
	if _, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: 1}); err == nil {
		t.Error("discarded checkpoint reached global I/O")
	}
	// The poisoned ID must not wedge the drain: a later commit drains
	// normally and wakes waiters on the dead ID too.
	if err := dev.Put(nvm.Checkpoint{ID: 2, Data: ckptData(1000)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	if !eng.WaitDrained(2, 5*time.Second) {
		t.Fatal("drain after a discarded checkpoint never completed")
	}
	if _, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: 2}); err != nil {
		t.Errorf("checkpoint 2 missing from global I/O: %v", err)
	}
	if !eng.WaitDrained(1, time.Millisecond) {
		t.Error("waiter on discarded ID not satisfied by the newer drain")
	}
}
