// Durability tracking for the asynchronous checkpoint mode: a VELOC-style
// per-node state machine that follows each checkpoint ID through the
// redundancy hierarchy (local NVM → partner copy → erasure set → global
// I/O) and exposes "checkpoint v is durable at level L" as a queryable and
// awaitable watermark. The tracker is the single completion surface for
// async commits: the engine marks LevelStore as drains land, the cluster
// marks LevelPartner/LevelErasure as its background propagation completes,
// and an aborted checkpoint is marked failed so waiters learn the ID will
// never arrive instead of blocking forever.
package ndp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ndpcr/internal/metrics"
)

// Level identifies one rung of the durability hierarchy a checkpoint climbs
// after its commit: the levels are ordered by cost of loss, and each keeps
// its own watermark. (Distinct from node.Level, which reports which rung
// served a restore.)
type Level int

// Durability levels, in propagation order.
const (
	// LevelNVM: the snapshot is in node-local NVM — the async commit's ack
	// point.
	LevelNVM Level = iota
	// LevelPartner: the partner node holds a redundant copy.
	LevelPartner
	// LevelErasure: the erasure set holds the rank's encoded shards.
	LevelErasure
	// LevelStore: the global I/O store holds the full object — the
	// strongest level, equivalent to the synchronous durable-before-ack
	// guarantee.
	LevelStore

	numLevels
)

func (l Level) String() string {
	switch l {
	case LevelNVM:
		return "nvm"
	case LevelPartner:
		return "partner"
	case LevelErasure:
		return "erasure"
	case LevelStore:
		return "store"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a level name ("nvm", "partner", "erasure", "store") to
// its Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "nvm", "local":
		return LevelNVM, nil
	case "partner":
		return LevelPartner, nil
	case "erasure":
		return LevelErasure, nil
	case "store", "io":
		return LevelStore, nil
	}
	return 0, fmt.Errorf("ndp: unknown durability level %q", s)
}

// Tracker errors.
var (
	// ErrCheckpointFailed reports that the awaited checkpoint was
	// permanently failed (propagation exhausted its retries, or the
	// coordinated checkpoint aborted) and will never reach the level.
	ErrCheckpointFailed = errors.New("ndp: checkpoint permanently failed")
	// ErrStopped reports the tracker was closed while waiting.
	ErrStopped = errors.New("ndp: durability tracker stopped")
	// ErrDiscarded is the failure cause recorded for checkpoints rolled
	// back by a coordinated-checkpoint abort or an explicit discard.
	ErrDiscarded = errors.New("checkpoint discarded by rollback")
)

// durWaiter parks one WaitDurableCtx call; ch (buffered 1) receives nil
// once the level's watermark reaches the ID, or the failure cause if the
// ID is permanently failed first.
type durWaiter struct {
	id    uint64
	level Level
	ch    chan error
}

// Tracker is the per-node durability state machine. All methods are safe
// for concurrent use. Watermark semantics are "id or newer": a level's
// watermark at X means the state as of checkpoint X is held there — the
// newest-first drain policy may skip stale intermediates, whose state is
// superseded rather than lost.
type Tracker struct {
	mu    sync.Mutex
	marks [numLevels]uint64
	has   [numLevels]bool
	// failed holds permanently failed checkpoint IDs with their first
	// cause. IDs are never reused after a failure (counters resync
	// forward), so entries are permanent and the map stays small.
	failed map[uint64]error
	// waiters is keyed by a token so an abandoned wait (ctx cancel, stop)
	// removes exactly its own entry — the set stays bounded by the number
	// of concurrent waiters, never by the history of timed-out ones.
	waiters map[uint64]*durWaiter
	nextTok uint64
	closed  bool
	stop    chan struct{}
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		failed:  make(map[uint64]error),
		waiters: make(map[uint64]*durWaiter),
		stop:    make(chan struct{}),
	}
}

// MarkDurable advances a level's watermark to id (watermarks never move
// backwards) and wakes every waiter the new watermark satisfies.
func (t *Tracker) MarkDurable(level Level, id uint64) {
	if level < 0 || level >= numLevels {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.has[level] && id <= t.marks[level] {
		return
	}
	t.marks[level] = id
	t.has[level] = true
	for tok, w := range t.waiters {
		if w.level == level && id >= w.id {
			if cause, bad := t.failed[w.id]; bad {
				w.ch <- fmt.Errorf("%w: checkpoint %d: %v", ErrCheckpointFailed, w.id, cause)
			} else {
				w.ch <- nil
			}
			delete(t.waiters, tok)
		}
	}
}

// Fail marks id permanently failed with the given cause (the first cause
// wins) and wakes waiters for that exact ID at every level. A failed ID is
// never reported durable by DurableAt or WaitDurableCtx, even if a level's
// watermark later passes it.
func (t *Tracker) Fail(id uint64, cause error) {
	if cause == nil {
		cause = errors.New("unspecified failure")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.failed[id]; !dup {
		t.failed[id] = cause
	}
	first := t.failed[id]
	for tok, w := range t.waiters {
		if w.id == id {
			w.ch <- fmt.Errorf("%w: checkpoint %d: %v", ErrCheckpointFailed, id, first)
			delete(t.waiters, tok)
		}
	}
}

// Watermark returns a level's current watermark; ok is false before
// anything reached the level.
func (t *Tracker) Watermark(level Level) (uint64, bool) {
	if level < 0 || level >= numLevels {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.marks[level], t.has[level]
}

// DurableAt reports whether checkpoint id is durable at level: the level's
// watermark has reached id (or newer — superseded state counts) and the ID
// was not permanently failed.
func (t *Tracker) DurableAt(id uint64, level Level) bool {
	if level < 0 || level >= numLevels {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, bad := t.failed[id]; bad {
		return false
	}
	return t.has[level] && t.marks[level] >= id
}

// FailedErr returns the failure cause recorded for id, or nil if the ID
// was not failed.
func (t *Tracker) FailedErr(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed[id]
}

// WaitDurableCtx blocks until checkpoint id is durable at level (nil), the
// ID is permanently failed (error wrapping ErrCheckpointFailed), ctx ends
// (ctx.Err()), or the tracker stops (ErrStopped). A wait abandoned by ctx
// or stop removes its own waiter entry immediately — abandoned waiters
// never accumulate until the next completion sweep.
func (t *Tracker) WaitDurableCtx(ctx context.Context, id uint64, level Level) error {
	if level < 0 || level >= numLevels {
		return fmt.Errorf("ndp: invalid durability level %d", int(level))
	}
	t.mu.Lock()
	if cause, bad := t.failed[id]; bad {
		t.mu.Unlock()
		return fmt.Errorf("%w: checkpoint %d: %v", ErrCheckpointFailed, id, cause)
	}
	if t.has[level] && t.marks[level] >= id {
		t.mu.Unlock()
		return nil
	}
	if t.closed {
		t.mu.Unlock()
		return ErrStopped
	}
	tok := t.nextTok
	t.nextTok++
	w := &durWaiter{id: id, level: level, ch: make(chan error, 1)}
	t.waiters[tok] = w
	t.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		t.removeWaiter(tok, w)
		// A completion racing the cancel may have delivered already;
		// prefer the definitive answer over a spurious timeout.
		select {
		case err := <-w.ch:
			return err
		default:
		}
		return ctx.Err()
	case <-t.stop:
		t.removeWaiter(tok, w)
		select {
		case err := <-w.ch:
			return err
		default:
		}
		// The stop may have raced the completion the waiter was parked
		// for: re-check state before reporting a shutdown, so a drained
		// checkpoint is never mis-reported as not-durable.
		if t.DurableAt(id, level) {
			return nil
		}
		if cause := t.FailedErr(id); cause != nil {
			return fmt.Errorf("%w: checkpoint %d: %v", ErrCheckpointFailed, id, cause)
		}
		return ErrStopped
	}
}

// removeWaiter deletes one abandoned waiter entry.
func (t *Tracker) removeWaiter(tok uint64, w *durWaiter) {
	t.mu.Lock()
	if cur, ok := t.waiters[tok]; ok && cur == w {
		delete(t.waiters, tok)
	}
	t.mu.Unlock()
}

// waiterCount reports the parked-waiter population (leak regression tests).
func (t *Tracker) waiterCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.waiters)
}

// Close releases every parked waiter with ErrStopped (or their definitive
// result, if the completion raced the stop) and fails future waits fast.
// Safe to call multiple times.
func (t *Tracker) Close() {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.stop)
	}
	t.mu.Unlock()
}

// Instrument registers the per-level durability watermarks
// (ndpcr_node_durable_level{level="..."}) with r, sampled at exposition
// time.
func (t *Tracker) Instrument(r *metrics.Registry) {
	for l := LevelNVM; l < numLevels; l++ {
		l := l
		r.GaugeFunc(fmt.Sprintf("ndpcr_node_durable_level{level=%q}", l.String()),
			"newest checkpoint ID durable at each redundancy level",
			func() float64 {
				id, ok := t.Watermark(l)
				if !ok {
					return 0
				}
				return float64(id)
			})
	}
}
