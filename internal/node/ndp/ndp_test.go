package ndp

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nic"
	"ndpcr/internal/node/nvm"
)

func testRig(t *testing.T, codec compress.Codec, serialize bool) (*nvm.Device, *iostore.Store, *Engine) {
	t.Helper()
	dev, err := nvm.NewDevice(64<<20, nvm.Pacer{})
	if err != nil {
		t.Fatal(err)
	}
	store := iostore.New(nvm.Pacer{})
	link, err := nic.NewLink(1<<20, nvm.Pacer{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Job: "job", Rank: 0,
		Device: dev, Store: store, Link: link,
		Codec: codec, Workers: 4, BlockSize: 4096,
		Serialize: serialize,
		OnError:   func(err error) { t.Logf("ndp error: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return dev, store, eng
}

func waitDrain(t *testing.T, eng *Engine, want uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if id, ok := eng.LastDrained(); ok && id >= want {
			return
		}
		select {
		case <-deadline:
			id, ok := eng.LastDrained()
			t.Fatalf("drain of %d never completed (last=%d ok=%v)", want, id, ok)
		case <-time.After(time.Millisecond):
		}
	}
}

func ckptData(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i / 64)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	dev, _ := nvm.NewDevice(1024, nvm.Pacer{})
	if _, err := New(Config{Device: dev, Store: iostore.New(nvm.Pacer{})}); err == nil {
		t.Error("missing job accepted")
	}
}

func TestDrainUncompressed(t *testing.T) {
	dev, store, eng := testRig(t, nil, false)
	data := ckptData(20000)
	meta := map[string]string{"step": "3"}
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: data, Meta: meta}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	waitDrain(t, eng, 1)

	obj, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Codec != "" {
		t.Errorf("codec = %q, want none", obj.Codec)
	}
	if obj.Meta["step"] != "3" {
		t.Error("metadata not propagated")
	}
	var joined []byte
	for _, b := range obj.Blocks {
		joined = append(joined, b...)
	}
	if !bytes.Equal(joined, data) {
		t.Error("drained bytes differ")
	}
}

func TestDrainCompressedRoundTrip(t *testing.T) {
	gz, _ := compress.Lookup("gzip", 1)
	for _, serialize := range []bool{false, true} {
		dev, store, eng := testRig(t, gz, serialize)
		data := ckptData(100000)
		if err := dev.Put(nvm.Checkpoint{ID: 1, Data: data}); err != nil {
			t.Fatal(err)
		}
		eng.Notify()
		waitDrain(t, eng, 1)

		obj, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: 1})
		if err != nil {
			t.Fatal(err)
		}
		if obj.Codec != "gzip" || obj.CodecLevel != 1 {
			t.Fatalf("codec = %s(%d)", obj.Codec, obj.CodecLevel)
		}
		if obj.StoredSize() >= int64(len(data)) {
			t.Error("compression did not shrink the checkpoint")
		}
		var joined []byte
		for i, b := range obj.Blocks {
			plain, err := gz.Decompress(nil, b)
			if err != nil {
				t.Fatalf("block %d: %v", i, err)
			}
			joined = append(joined, plain...)
		}
		if !bytes.Equal(joined, data) {
			t.Errorf("serialize=%v: reassembled bytes differ", serialize)
		}
	}
}

func TestDrainSkipsToLatest(t *testing.T) {
	dev, store, eng := testRig(t, nil, false)
	// Commit three checkpoints before ringing the bell: the engine should
	// drain the newest (policy: as fresh as possible).
	for id := uint64(1); id <= 3; id++ {
		if err := dev.Put(nvm.Checkpoint{ID: id, Data: ckptData(1000)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Notify()
	waitDrain(t, eng, 3)
	if _, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: 3}); err != nil {
		t.Errorf("latest not drained: %v", err)
	}
	// IDs 1 and 2 were skipped entirely.
	if ids, err := store.IDs(context.Background(), "job", 0); err != nil || len(ids) != 1 {
		t.Errorf("drained ids = %v, %v, want [3]", ids, err)
	}
}

func TestDrainUnlocksCheckpoint(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(1000)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	waitDrain(t, eng, 1)
	// If the engine leaked its drain lock, this Put would need the space
	// and fail; give eviction a reason by filling the device.
	big := make([]byte, 63<<20)
	if err := dev.Put(nvm.Checkpoint{ID: 2, Data: big}); err != nil {
		t.Errorf("post-drain eviction blocked: %v", err)
	}
}

func TestDrainedEventChannel(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(100)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	select {
	case id := <-eng.Drained():
		if id != 1 {
			t.Errorf("drained id = %d", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no drain event")
	}
}

func TestWipeDuringIdleIsSafe(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(100)})
	eng.Notify()
	waitDrain(t, eng, 1)
	dev.Wipe()
	eng.Notify() // nothing to drain; must not wedge or error fatally
	time.Sleep(10 * time.Millisecond)
	if id, ok := eng.LastDrained(); !ok || id != 1 {
		t.Errorf("last drained = %d, %v", id, ok)
	}
}

func TestPauseResumeNVM(t *testing.T) {
	dev, _, eng := testRig(t, nil, false)
	// Pause, commit while paused, resume: drain must proceed afterwards.
	eng.PauseNVM()
	if err := dev.Put(nvm.Checkpoint{ID: 1, Data: ckptData(5000)}); err != nil {
		t.Fatal(err)
	}
	eng.Notify()
	time.Sleep(20 * time.Millisecond) // engine should be blocked at the gate
	if _, ok := eng.LastDrained(); ok {
		t.Error("drain completed while NVM was paused")
	}
	eng.ResumeNVM()
	waitDrain(t, eng, 1)
}

func TestConcurrentCommitsAllEventuallyDrainLatest(t *testing.T) {
	dev, store, eng := testRig(t, nil, false)
	var wg sync.WaitGroup
	const n = 20
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := dev.Put(nvm.Checkpoint{ID: id, Data: ckptData(2000)}); err != nil {
				t.Errorf("put %d: %v", id, err)
			}
			eng.Notify()
		}(uint64(i))
	}
	wg.Wait()
	waitDrain(t, eng, n)
	if latest, ok, _ := store.Latest(context.Background(), "job", 0); !ok || latest != n {
		t.Errorf("latest on I/O = %d, %v", latest, ok)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	_, _, eng := testRig(t, nil, false)
	eng.Close()
	eng.Close()
}

func TestDrainUnderEvictionPressure(t *testing.T) {
	// The device holds only a few checkpoints, so the host's commit stream
	// constantly evicts while the engine drains. Every candidate the engine
	// picks is pinned atomically (nvm.LatestLocked), so no drain may fail
	// with a not-found error no matter how the eviction interleaves.
	dev, err := nvm.NewDevice(8<<10, nvm.Pacer{})
	if err != nil {
		t.Fatal(err)
	}
	store := iostore.New(nvm.Pacer{})
	link, err := nic.NewLink(1<<20, nvm.Pacer{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var asyncErrs []error
	eng, err := New(Config{
		Job: "job", Rank: 0,
		Device: dev, Store: store, Link: link,
		BlockSize: 1024,
		OnError: func(err error) {
			mu.Lock()
			asyncErrs = append(asyncErrs, err)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)

	const last = 200
	for id := uint64(1); id <= last; id++ {
		eng.PauseNVM()
		err := dev.Put(nvm.Checkpoint{ID: id, Data: ckptData(2048)})
		eng.ResumeNVM()
		if err != nil {
			t.Fatalf("put %d: %v", id, err)
		}
		eng.Notify()
	}
	waitDrain(t, eng, last)
	mu.Lock()
	defer mu.Unlock()
	if len(asyncErrs) != 0 {
		t.Errorf("drain errors under eviction pressure: %v", asyncErrs)
	}
}
