package node

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/node/iostore"
)

// incrementalNode builds a node with incremental drains enabled.
func incrementalNode(t *testing.T, codec compress.Codec, fullEvery int) (*Node, *iostore.Store) {
	t.Helper()
	n, store := newNode(t, func(c *Config) {
		c.Codec = codec
		c.Incremental = true
		c.FullEvery = fullEvery
		c.BlockSize = 4096
		c.DeltaBlockSize = 4096
	})
	return n, store
}

// evolvingSnapshot mutates ~5% of the buffer per version, HPC-style.
func evolvingSnapshot(version int) []byte {
	b := make([]byte, 400_000)
	for i := range b {
		b[i] = byte(i / 97)
	}
	// Each version touches a distinct contiguous region.
	lo := (version * 20_000) % (len(b) - 20_000)
	for i := lo; i < lo+20_000; i++ {
		b[i] = byte(version)
	}
	return b
}

func drainAll(t *testing.T, n *Node, id uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if last, ok := n.Engine().LastDrained(); ok && last >= id {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("drain of %d never completed", id)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestIncrementalDrainShipsLess(t *testing.T) {
	n, store := incrementalNode(t, nil, 100)
	var lastID uint64
	for v := 1; v <= 4; v++ {
		id, err := n.Commit(evolvingSnapshot(v), Metadata{Step: v})
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
		drainAll(t, n, id) // serialize drains so each version ships
	}
	// First object is full; later ones are patches and much smaller.
	full, _ := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: 1})
	if full.DeltaBase != 0 {
		t.Fatal("first drain was not a full checkpoint")
	}
	for id := uint64(2); id <= lastID; id++ {
		obj, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: id})
		if err != nil {
			t.Fatalf("object %d: %v", id, err)
		}
		if obj.DeltaBase != id-1 {
			t.Errorf("object %d has base %d, want %d", id, obj.DeltaBase, id-1)
		}
		if obj.StoredSize() > full.StoredSize()/4 {
			t.Errorf("patch %d is %d bytes vs full %d — not incremental",
				id, obj.StoredSize(), full.StoredSize())
		}
	}
}

func TestIncrementalRestoreReconstructsChain(t *testing.T) {
	for _, codecName := range []string{"", "gzip"} {
		var codec compress.Codec
		if codecName != "" {
			codec, _ = compress.Lookup(codecName, 1)
		}
		n, _ := incrementalNode(t, codec, 100)
		var want []byte
		var lastID uint64
		for v := 1; v <= 5; v++ {
			want = evolvingSnapshot(v)
			id, err := n.Commit(want, Metadata{Step: v})
			if err != nil {
				t.Fatal(err)
			}
			lastID = id
			drainAll(t, n, id)
		}
		n.FailLocal()
		got, meta, level, err := n.Restore(context.Background())
		if err != nil {
			t.Fatalf("codec %q: %v", codecName, err)
		}
		if level != LevelIO || meta.Step != 5 {
			t.Errorf("codec %q: level=%v step=%d", codecName, level, meta.Step)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("codec %q: chain reconstruction mismatch", codecName)
		}
		_ = lastID
		n.Close()
	}
}

func TestIncrementalFullEveryBoundsChains(t *testing.T) {
	n, store := incrementalNode(t, nil, 2)
	for v := 1; v <= 7; v++ {
		id, err := n.Commit(evolvingSnapshot(v), Metadata{Step: v})
		if err != nil {
			t.Fatal(err)
		}
		drainAll(t, n, id)
	}
	// With FullEvery=2 the pattern is full, patch, patch, full, patch,
	// patch, full.
	wantFull := map[uint64]bool{1: true, 4: true, 7: true}
	for id := uint64(1); id <= 7; id++ {
		obj, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: id})
		if err != nil {
			t.Fatalf("object %d: %v", id, err)
		}
		isFull := obj.DeltaBase == 0
		if isFull != wantFull[id] {
			t.Errorf("object %d: full=%v, want %v", id, isFull, wantFull[id])
		}
	}
	// Restoring a mid-chain checkpoint works too.
	n.FailLocal()
	got, meta, _, err := n.RestoreID(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 5 || !bytes.Equal(got, evolvingSnapshot(5)) {
		t.Error("mid-chain restore mismatch")
	}
}

func TestIncrementalSkipsStillReconstruct(t *testing.T) {
	// When drains lag commits, the engine skips intermediate checkpoints;
	// diffs are then between non-consecutive IDs and must still apply.
	n, store := incrementalNode(t, nil, 100)
	// Commit three versions quickly; the engine may coalesce.
	var lastID uint64
	for v := 1; v <= 3; v++ {
		id, err := n.Commit(evolvingSnapshot(v), Metadata{Step: v})
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
	}
	drainAll(t, n, lastID)
	n.FailLocal()
	got, _, _, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, evolvingSnapshot(3)) {
		t.Error("reconstruction after skipped drains mismatch")
	}
	_ = store
}

func TestIncrementalAfterIOLevelRecovery(t *testing.T) {
	// After a node loss + I/O restore, the engine's digest table refers to
	// the pre-failure lineage; subsequent incremental drains must still
	// reconstruct correctly (diffs are content-based).
	n, _ := incrementalNode(t, nil, 100)
	id, err := n.Commit(evolvingSnapshot(1), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	drainAll(t, n, id)
	n.FailLocal()
	if _, _, _, err := n.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	// New lineage: different content evolution after restart.
	want := evolvingSnapshot(9)
	id2, err := n.Commit(want, Metadata{Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	drainAll(t, n, id2)
	n.FailLocal()
	got, meta, _, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 2 || !bytes.Equal(got, want) {
		t.Error("post-recovery incremental drain did not reconstruct")
	}
}
