package nvm

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"ndpcr/internal/units"
)

func mk(t *testing.T, capacity int64) *Device {
	t.Helper()
	d, err := NewDevice(capacity, Pacer{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(0, Pacer{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewDevice(-5, Pacer{}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	d := mk(t, 1000)
	data := []byte("checkpoint-one")
	meta := map[string]string{"job": "j", "rank": "0"}
	if err := d.Put(Checkpoint{ID: 1, Data: data, Meta: meta}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, data) || got.Meta["job"] != "j" {
		t.Error("round trip mismatch")
	}
	// The stored copy must not alias the caller's buffer.
	data[0] = 'X'
	got2, _ := d.Get(1)
	if got2.Data[0] == 'X' {
		t.Error("device aliases caller buffer")
	}
}

func TestGetMissing(t *testing.T) {
	d := mk(t, 100)
	if _, err := d.Get(7); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, ok := d.Peek(7); ok {
		t.Error("Peek found missing checkpoint")
	}
	if _, ok := d.Latest(); ok {
		t.Error("Latest on empty device")
	}
}

func TestCircularEviction(t *testing.T) {
	d := mk(t, 100)
	for id := uint64(1); id <= 5; id++ {
		if err := d.Put(Checkpoint{ID: id, Data: make([]byte, 40)}); err != nil {
			t.Fatalf("put %d: %v", id, err)
		}
	}
	// Capacity 100 holds two 40-byte checkpoints: the oldest are evicted
	// FIFO, so 4 and 5 remain.
	ids := d.IDs()
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Errorf("resident = %v, want [4 5]", ids)
	}
	if l, ok := d.Latest(); !ok || l.ID != 5 {
		t.Errorf("latest = %v", l.ID)
	}
	if d.Used() != 80 {
		t.Errorf("used = %d", d.Used())
	}
}

func TestTooLarge(t *testing.T) {
	d := mk(t, 100)
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 101)}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestLockPreventsEviction(t *testing.T) {
	d := mk(t, 100)
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lock(1); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 2 cannot fit while 1 is locked.
	if err := d.Put(Checkpoint{ID: 2, Data: make([]byte, 60)}); !errors.Is(err, ErrFull) {
		t.Errorf("err = %v, want ErrFull", err)
	}
	if err := d.Unlock(1); err != nil {
		t.Fatal(err)
	}
	// Now the circular buffer may reuse 1's space (§4.2.2's unlock →
	// reuse).
	if err := d.Put(Checkpoint{ID: 2, Data: make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(1); !errors.Is(err, ErrNotFound) {
		t.Error("evicted checkpoint still present")
	}
}

func TestLockedOverwriteRejected(t *testing.T) {
	d := mk(t, 100)
	d.Put(Checkpoint{ID: 1, Data: []byte("a")})
	d.Lock(1)
	if err := d.Put(Checkpoint{ID: 1, Data: []byte("b")}); err == nil {
		t.Error("overwrite of locked checkpoint accepted")
	}
	d.Unlock(1)
	if err := d.Put(Checkpoint{ID: 1, Data: []byte("b")}); err != nil {
		t.Errorf("overwrite after unlock failed: %v", err)
	}
	got, _ := d.Get(1)
	if string(got.Data) != "b" {
		t.Error("overwrite did not replace data")
	}
}

func TestLockErrors(t *testing.T) {
	d := mk(t, 100)
	if err := d.Lock(9); !errors.Is(err, ErrNotFound) {
		t.Error("lock of missing checkpoint")
	}
	if err := d.Unlock(9); !errors.Is(err, ErrNotFound) {
		t.Error("unlock of missing checkpoint")
	}
	d.Put(Checkpoint{ID: 1, Data: []byte("x")})
	if err := d.Unlock(1); err == nil {
		t.Error("unlock of unlocked checkpoint accepted")
	}
	// Locks nest.
	d.Lock(1)
	d.Lock(1)
	if err := d.Unlock(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Unlock(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Unlock(1); err == nil {
		t.Error("over-unlock accepted")
	}
}

func TestWipe(t *testing.T) {
	d := mk(t, 100)
	d.Put(Checkpoint{ID: 1, Data: make([]byte, 50)})
	d.Lock(1)
	d.Wipe()
	if d.Used() != 0 || len(d.IDs()) != 0 {
		t.Error("wipe left residue")
	}
	// Space is reusable even though 1 was locked (the failure lost it).
	if err := d.Put(Checkpoint{ID: 2, Data: make([]byte, 100)}); err != nil {
		t.Errorf("put after wipe: %v", err)
	}
}

func TestPacerComputesDuration(t *testing.T) {
	var slept units.Seconds
	p := Pacer{Bandwidth: 100 * units.MBps, Sleep: func(d units.Seconds) { slept += d }}
	d := p.Move(50_000_000) // 50 MB at 100 MB/s = 0.5 s
	if d != 0.5 || slept != 0.5 {
		t.Errorf("paced %v (slept %v), want 0.5 s", d, slept)
	}
	if (Pacer{}).Move(1<<30) != 0 {
		t.Error("unthrottled pacer should report zero")
	}
}

func TestDevicePacing(t *testing.T) {
	var slept units.Seconds
	d, err := NewDevice(1<<20, Pacer{Bandwidth: 1 * units.MBps, Sleep: func(s units.Seconds) { slept += s }})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(Checkpoint{ID: 1, Data: make([]byte, 500_000)}) // 0.5 s
	d.Get(1)                                              // another 0.5 s
	if slept < 0.99 || slept > 1.01 {
		t.Errorf("total paced time = %v, want ~1 s", slept)
	}
	// Peek and metadata must not pace.
	before := slept
	d.Peek(1)
	d.Latest()
	d.IDs()
	if slept != before {
		t.Error("metadata operations paced")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := mk(t, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(g*1000 + i)
				if err := d.Put(Checkpoint{ID: id, Data: make([]byte, 512)}); err != nil &&
					!errors.Is(err, ErrFull) {
					t.Errorf("put: %v", err)
					return
				}
				d.Latest()
				d.Get(id)
				if d.Lock(id) == nil {
					d.Unlock(id)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLatestLockedPinsAgainstEviction(t *testing.T) {
	// Regression for the drain-candidate race: the engine used to call
	// Latest() and then Lock(id) as two separate device operations, leaving
	// a window where circular-buffer eviction reclaimed the chosen
	// checkpoint — the drain then failed spuriously or, worse, skipped a
	// checkpoint that was never shipped. LatestLocked pins the candidate
	// under the device mutex; under eviction pressure the pinned checkpoint
	// must stay resident and intact until Unlock.
	d := mk(t, 4096) // room for ~4 of the 1 KiB checkpoints below
	var wg sync.WaitGroup
	done := make(chan struct{})

	// Producer: constant eviction pressure from ever-newer checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := uint64(1); ; id++ {
			select {
			case <-done:
				return
			default:
			}
			data := make([]byte, 1024)
			for i := range data {
				data[i] = byte(id)
			}
			if err := d.Put(Checkpoint{ID: id, Data: data}); err != nil &&
				!errors.Is(err, ErrFull) {
				t.Errorf("put %d: %v", id, err)
				return
			}
		}
	}()

	// Consumer: pick-and-pin, then verify the pinned checkpoint survives.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for n := 0; n < 500; n++ {
			ckpt, ok := d.LatestLocked()
			if !ok {
				continue
			}
			got, err := d.Get(ckpt.ID)
			if err != nil {
				t.Errorf("pinned checkpoint %d evicted: %v", ckpt.ID, err)
				return
			}
			for i, b := range got.Data {
				if b != byte(ckpt.ID) {
					t.Errorf("pinned checkpoint %d corrupted at byte %d", ckpt.ID, i)
					return
				}
			}
			if err := d.Unlock(ckpt.ID); err != nil {
				t.Errorf("unlock %d: %v", ckpt.ID, err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestDiscardRemovesLockedCheckpoint(t *testing.T) {
	d := mk(t, 1000)
	if err := d.Put(Checkpoint{ID: 1, Data: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lock(1); err != nil {
		t.Fatal(err)
	}
	// Discard is the abort path: it must win even against a drain lock.
	if !d.Discard(1) {
		t.Fatal("Discard reported checkpoint 1 absent")
	}
	if _, err := d.Get(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("discarded checkpoint still readable: %v", err)
	}
	if d.Used() != 0 {
		t.Errorf("used = %d after discard, want 0", d.Used())
	}
	if d.Discard(1) {
		t.Error("second discard reported the checkpoint present")
	}
	// The space is genuinely reclaimed.
	if err := d.Put(Checkpoint{ID: 2, Data: make([]byte, 1000)}); err != nil {
		t.Errorf("full-size put after discard: %v", err)
	}
}

func TestFaultHookFailsOperations(t *testing.T) {
	d := mk(t, 1000)
	var ops []string
	d.SetFaultHook(func(op string, id uint64) error {
		ops = append(ops, op)
		if op == "get" {
			return errors.New("injected")
		}
		return nil
	})
	if err := d.Put(Checkpoint{ID: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(1); err == nil {
		t.Error("hooked get succeeded")
	}
	if len(ops) != 2 || ops[0] != "put" || ops[1] != "get" {
		t.Errorf("hook saw ops %v", ops)
	}
	d.SetFaultHook(nil)
	if _, err := d.Get(1); err != nil {
		t.Errorf("get after hook removal: %v", err)
	}
}
