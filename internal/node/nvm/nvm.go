// Package nvm models a compute node's local NVM checkpoint store: a
// capacity-bounded device whose checkpoint region is organized as a
// circular FIFO buffer (§4.2.1). Checkpoints being drained to global I/O by
// the NDP are locked against eviction (§4.2.2); the host's writes always
// get the full device bandwidth, with any concurrent NDP activity paused by
// the engine layer.
package nvm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ndpcr/internal/metrics"
	"ndpcr/internal/units"
)

// Common errors.
var (
	// ErrFull reports that a write cannot fit even after evicting every
	// unlocked checkpoint.
	ErrFull = errors.New("nvm: device full (all resident checkpoints locked)")
	// ErrNotFound reports a missing checkpoint ID.
	ErrNotFound = errors.New("nvm: checkpoint not found")
	// ErrTooLarge reports a checkpoint bigger than the device.
	ErrTooLarge = errors.New("nvm: checkpoint exceeds device capacity")
	// ErrBackpressure reports that admission control gave up waiting for
	// space: occupancy minus drain-locked residents could not admit the
	// write before the caller's deadline. The async commit path surfaces
	// this typed error instead of ErrFull.
	ErrBackpressure = errors.New("nvm: admission backpressure (locked residents exceed free space)")
)

// Pacer throttles data movement to a simulated bandwidth. The zero-value
// pacer is unthrottled; tests inject a recording sleep function.
type Pacer struct {
	// Bandwidth of the simulated device; 0 disables throttling.
	Bandwidth units.Bandwidth
	// Sleep is called with the transfer duration; nil means no delay is
	// simulated (the duration is still computed for callers that record
	// it). Tests substitute a recorder.
	Sleep func(units.Seconds)
}

// Move accounts (and optionally sleeps for) a transfer of n bytes,
// returning the simulated duration.
func (p Pacer) Move(n int) units.Seconds {
	if p.Bandwidth <= 0 {
		return 0
	}
	d := p.Bandwidth.TimeToMove(units.Bytes(n))
	if p.Sleep != nil {
		p.Sleep(d)
	}
	return d
}

// Checkpoint is one resident checkpoint.
type Checkpoint struct {
	ID   uint64
	Data []byte
	// Meta carries BLCR-style identification (job, rank, step); opaque to
	// the device.
	Meta map[string]string
}

// Device is a checkpoint-region NVM device. All methods are safe for
// concurrent use.
type Device struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ckpts    map[uint64]*entry
	order    []uint64 // FIFO eviction order (ascending insertion)
	pacer    Pacer

	// faultHook, when set, is consulted at the top of Put and Get with the
	// operation name ("put"/"get") and checkpoint ID; a non-nil return
	// fails the operation. Fault-injection harnesses install it; the nil
	// default costs one mutex-protected load per operation.
	faultHook func(op string, id uint64) error

	// admit, when non-nil, is a broadcast channel WaitAdmit callers park
	// on; it is closed (and nilled) whenever space may have been released
	// (an unlock, a discard, a wipe), waking every waiter to re-check.
	admit chan struct{}

	// Metrics (nil until Instrument is called).
	mEvictions     *metrics.Counter
	mFull          *metrics.Counter
	mLockConflicts *metrics.Counter
	mWriteBytes    *metrics.Histogram
	mReadBytes     *metrics.Histogram
	mAdmitWaits    *metrics.Counter
	mBackpressure  *metrics.Counter
	mAdmitWaitSecs *metrics.Histogram
}

type entry struct {
	ckpt  Checkpoint
	locks int
}

// NewDevice creates a device with the given checkpoint-region capacity in
// bytes and pacing. Capacity must be positive.
func NewDevice(capacity int64, pacer Pacer) (*Device, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("nvm: capacity must be positive, got %d", capacity)
	}
	return &Device{
		capacity: capacity,
		ckpts:    make(map[uint64]*entry),
		pacer:    pacer,
	}, nil
}

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Instrument registers the device's metrics (occupancy, evictions, lock
// conflicts, transfer sizes) with r. Occupancy-style values are sampled at
// exposition time; the device stays allocation-free on the hot path.
func (d *Device) Instrument(r *metrics.Registry) {
	r.GaugeFunc("ndpcr_nvm_capacity_bytes", "checkpoint-region capacity",
		func() float64 { return float64(d.capacity) })
	r.GaugeFunc("ndpcr_nvm_used_bytes", "bytes resident in the checkpoint region",
		func() float64 { return float64(d.Used()) })
	r.GaugeFunc("ndpcr_nvm_resident_checkpoints", "checkpoints resident in NVM",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(len(d.ckpts))
		})
	r.GaugeFunc("ndpcr_nvm_locked_checkpoints", "resident checkpoints pinned by a drain lock",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			n := 0
			for _, e := range d.ckpts {
				if e.locks > 0 {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeFunc("ndpcr_nvm_locked_bytes", "bytes pinned by drain locks (not reclaimable by admission control)",
		func() float64 { return float64(d.LockedBytes()) })
	d.mEvictions = r.Counter("ndpcr_nvm_evictions_total", "checkpoints evicted by circular-buffer pressure")
	d.mFull = r.Counter("ndpcr_nvm_full_total", "writes rejected because every resident checkpoint was locked")
	d.mLockConflicts = r.Counter("ndpcr_nvm_lock_conflicts_total", "writes that skipped or collided with a locked checkpoint")
	d.mWriteBytes = r.Histogram("ndpcr_nvm_write_bytes", "checkpoint sizes written to NVM", metrics.UnitBytes)
	d.mReadBytes = r.Histogram("ndpcr_nvm_read_bytes", "checkpoint sizes read from NVM", metrics.UnitBytes)
	d.mAdmitWaits = r.Counter("ndpcr_nvm_admission_waits_total", "async commits that had to wait for drain-locked space")
	d.mBackpressure = r.Counter("ndpcr_nvm_backpressure_total", "admission waits abandoned at the caller's deadline (ErrBackpressure)")
	d.mAdmitWaitSecs = r.Histogram("ndpcr_nvm_admission_wait_seconds", "time async commits spent blocked on admission", metrics.UnitSeconds)
}

// SetFaultHook installs (or, with nil, removes) a failure-injection hook
// called at the top of every Put and Get with the operation name and
// checkpoint ID; a non-nil return aborts the operation with that error.
func (d *Device) SetFaultHook(h func(op string, id uint64) error) {
	d.mu.Lock()
	d.faultHook = h
	d.mu.Unlock()
}

// checkFault runs the fault hook, if any, outside d.mu (stall-mode hooks
// sleep).
func (d *Device) checkFault(op string, id uint64) error {
	d.mu.Lock()
	h := d.faultHook
	d.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(op, id)
}

// Used returns the bytes currently resident.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// LockedBytes returns the bytes pinned by drain locks — residents the
// circular buffer may not evict and admission control may not count as
// reclaimable.
func (d *Device) LockedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, e := range d.ckpts {
		if e.locks > 0 {
			n += int64(len(e.ckpt.Data))
		}
	}
	return n
}

// admissibleLocked reports whether a write of size bytes could succeed
// right now: free space plus every unlocked (evictable) resident covers
// it. This is exactly Put's evict-until-fit feasibility condition, checked
// without mutating. Caller holds d.mu.
func (d *Device) admissibleLocked(size int64) bool {
	free := d.capacity - d.used
	if free >= size {
		return true
	}
	for _, e := range d.ckpts {
		if e.locks == 0 {
			free += int64(len(e.ckpt.Data))
			if free >= size {
				return true
			}
		}
	}
	return false
}

// signalAdmitLocked wakes every WaitAdmit caller to re-check. Caller holds
// d.mu and has just released space or a lock.
func (d *Device) signalAdmitLocked() {
	if d.admit != nil {
		close(d.admit)
		d.admit = nil
	}
}

// WaitAdmit blocks until a write of size bytes is admissible — free space
// plus evictable (unlocked) residents covers it — or ctx ends, returning
// an ErrBackpressure-wrapped error in the latter case. It is the async
// commit path's admission control: instead of failing ErrFull when drain
// locks pin the space, the committer parks here and is woken as drains
// release their locks. Admission is advisory, not a reservation: the
// caller re-runs Put and, if a new lock raced in between, waits again.
func (d *Device) WaitAdmit(ctx context.Context, size int64) error {
	if size > d.capacity {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, d.capacity)
	}
	var start time.Time
	waited := false
	for {
		d.mu.Lock()
		if d.admissibleLocked(size) {
			d.mu.Unlock()
			if waited && d.mAdmitWaitSecs != nil {
				d.mAdmitWaitSecs.ObserveSince(start)
			}
			return nil
		}
		if d.admit == nil {
			d.admit = make(chan struct{})
		}
		ch := d.admit
		d.mu.Unlock()
		if !waited {
			waited = true
			start = time.Now()
			if d.mAdmitWaits != nil {
				d.mAdmitWaits.Inc()
			}
		}
		select {
		case <-ch:
		case <-ctx.Done():
			if d.mBackpressure != nil {
				d.mBackpressure.Inc()
			}
			if d.mAdmitWaitSecs != nil {
				d.mAdmitWaitSecs.ObserveSince(start)
			}
			return fmt.Errorf("%w: %d bytes not admissible: %w", ErrBackpressure, size, ctx.Err())
		}
	}
}

// Put writes a checkpoint, evicting the oldest unlocked checkpoints as
// needed (circular-buffer semantics). It returns ErrTooLarge for oversized
// checkpoints and ErrFull when locked residents block the space. The data
// slice is copied; callers may reuse it.
func (d *Device) Put(ckpt Checkpoint) error {
	if err := d.checkFault("put", ckpt.ID); err != nil {
		return fmt.Errorf("nvm: put %d: %w", ckpt.ID, err)
	}
	size := int64(len(ckpt.Data))
	if size > d.capacity {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, d.capacity)
	}
	d.mu.Lock()
	if old, exists := d.ckpts[ckpt.ID]; exists {
		if old.locks > 0 {
			d.mu.Unlock()
			if d.mLockConflicts != nil {
				d.mLockConflicts.Inc()
			}
			return fmt.Errorf("nvm: checkpoint %d is locked and cannot be overwritten", ckpt.ID)
		}
		d.removeLocked(ckpt.ID)
	}
	// Evict oldest unlocked until the new checkpoint fits.
	for d.used+size > d.capacity {
		if !d.evictOldestUnlocked() {
			d.mu.Unlock()
			if d.mFull != nil {
				d.mFull.Inc()
			}
			return ErrFull
		}
	}
	stored := Checkpoint{ID: ckpt.ID, Data: append([]byte(nil), ckpt.Data...)}
	if ckpt.Meta != nil {
		stored.Meta = make(map[string]string, len(ckpt.Meta))
		for k, v := range ckpt.Meta {
			stored.Meta[k] = v
		}
	}
	d.ckpts[ckpt.ID] = &entry{ckpt: stored}
	d.order = append(d.order, ckpt.ID)
	d.used += size
	d.mu.Unlock()

	// Pace outside the lock: the simulated transfer time must not block
	// metadata readers.
	d.pacer.Move(len(ckpt.Data))
	if d.mWriteBytes != nil {
		d.mWriteBytes.Observe(size)
	}
	return nil
}

// evictOldestUnlocked removes the oldest unlocked checkpoint; it reports
// whether anything was evicted. Caller holds d.mu.
func (d *Device) evictOldestUnlocked() bool {
	for _, id := range d.order {
		e, ok := d.ckpts[id]
		if ok && e.locks == 0 {
			d.removeLocked(id)
			if d.mEvictions != nil {
				d.mEvictions.Inc()
			}
			return true
		}
		if ok && d.mLockConflicts != nil {
			d.mLockConflicts.Inc()
		}
	}
	return false
}

// removeLocked removes id from the maps. Caller holds d.mu.
func (d *Device) removeLocked(id uint64) {
	e, ok := d.ckpts[id]
	if !ok {
		return
	}
	d.used -= int64(len(e.ckpt.Data))
	delete(d.ckpts, id)
	for i, oid := range d.order {
		if oid == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Get returns the checkpoint with the given ID. The returned data aliases
// device memory and must be treated as read-only; the read is paced.
func (d *Device) Get(id uint64) (Checkpoint, error) {
	if err := d.checkFault("get", id); err != nil {
		return Checkpoint{}, fmt.Errorf("nvm: get %d: %w", id, err)
	}
	d.mu.Lock()
	e, ok := d.ckpts[id]
	if !ok {
		d.mu.Unlock()
		return Checkpoint{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	ckpt := e.ckpt
	d.mu.Unlock()
	d.pacer.Move(len(ckpt.Data))
	if d.mReadBytes != nil {
		d.mReadBytes.Observe(int64(len(ckpt.Data)))
	}
	return ckpt, nil
}

// Peek is Get without pacing (metadata inspection).
func (d *Device) Peek(id uint64) (Checkpoint, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.ckpts[id]
	if !ok {
		return Checkpoint{}, false
	}
	return e.ckpt, true
}

// Latest returns the resident checkpoint with the highest ID, or false if
// the device is empty.
func (d *Device) Latest() (Checkpoint, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best *entry
	for _, e := range d.ckpts {
		if best == nil || e.ckpt.ID > best.ckpt.ID {
			best = e
		}
	}
	if best == nil {
		return Checkpoint{}, false
	}
	return best.ckpt, true
}

// LatestLocked atomically finds the resident checkpoint with the highest
// ID and takes an eviction lock on it before releasing the device mutex.
// The separate Latest-then-Lock sequence leaves a window where circular-
// buffer eviction can reclaim the chosen checkpoint; the NDP engine uses
// this to pin its drain candidate race-free. The caller must Unlock the
// returned ID.
func (d *Device) LatestLocked() (Checkpoint, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best *entry
	for _, e := range d.ckpts {
		if best == nil || e.ckpt.ID > best.ckpt.ID {
			best = e
		}
	}
	if best == nil {
		return Checkpoint{}, false
	}
	best.locks++
	return best.ckpt, true
}

// IDs returns resident checkpoint IDs in ascending order.
func (d *Device) IDs() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.ckpts))
	for id := range d.ckpts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lock pins a checkpoint against eviction and overwrite (the NDP locks the
// checkpoint it is draining, §4.2.2). Locks nest.
func (d *Device) Lock(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.ckpts[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	e.locks++
	return nil
}

// Unlock releases one lock on a checkpoint. Unlocking a missing or
// unlocked checkpoint is an error (it indicates an engine bug).
func (d *Device) Unlock(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.ckpts[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if e.locks == 0 {
		return fmt.Errorf("nvm: checkpoint %d is not locked", id)
	}
	e.locks--
	if e.locks == 0 {
		// The entry became evictable: admission waiters may fit now.
		d.signalAdmitLocked()
	}
	return nil
}

// Discard force-removes a checkpoint, locks and all, reporting whether it
// was resident. It is the abort path of a failed coordinated checkpoint: a
// poisoned ID must not stay restorable, even while an NDP drain still holds
// its eviction lock (the drain tolerates the checkpoint vanishing).
func (d *Device) Discard(id uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.ckpts[id]; !ok {
		return false
	}
	d.removeLocked(id)
	d.signalAdmitLocked()
	return true
}

// Wipe simulates node-local storage loss (a failure that the local level
// cannot recover from): every checkpoint disappears, locks and all.
func (d *Device) Wipe() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ckpts = make(map[uint64]*entry)
	d.order = nil
	d.used = 0
	d.signalAdmitLocked()
}
