package nvm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWaitAdmitImmediateWhenSpaceFree(t *testing.T) {
	d := mk(t, 1000)
	if err := d.WaitAdmit(context.Background(), 500); err != nil {
		t.Fatalf("admission with a free device: %v", err)
	}
}

func TestWaitAdmitRejectsOversized(t *testing.T) {
	d := mk(t, 100)
	if err := d.WaitAdmit(context.Background(), 200); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestWaitAdmitCountsEvictableResidents(t *testing.T) {
	d := mk(t, 100)
	// Fill the device with an unlocked (evictable) resident: admission
	// must pass immediately, because Put can evict it to make room.
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitAdmit(context.Background(), 80); err != nil {
		t.Fatalf("admission over an evictable resident: %v", err)
	}
}

func TestWaitAdmitBackpressureOnLockedResidents(t *testing.T) {
	d := mk(t, 100)
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lock(1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := d.WaitAdmit(ctx, 80)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("got %v, want ErrBackpressure", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("backpressure error does not carry the ctx cause: %v", err)
	}
}

// TestWaitAdmitBlocksThenAdmitsOnUnlock is the core admission-control
// contract: a commit against a device full of drain-locked residents parks
// instead of failing, and is admitted the instant a drain releases space.
func TestWaitAdmitBlocksThenAdmitsOnUnlock(t *testing.T) {
	d := mk(t, 100)
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lock(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.WaitAdmit(context.Background(), 80) }()
	select {
	case err := <-done:
		t.Fatalf("admission did not block on a locked full device (err=%v)", err)
	case <-time.After(10 * time.Millisecond):
	}
	if err := d.Unlock(1); err != nil { // drain finished: resident evictable
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("admission after unlock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admission never woke after the lock released")
	}
}

func TestWaitAdmitWokenByDiscard(t *testing.T) {
	d := mk(t, 100)
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lock(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.WaitAdmit(context.Background(), 50) }()
	time.Sleep(5 * time.Millisecond)
	d.Discard(1) // rollback path: locked resident dropped outright
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("admission after discard: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admission never woke after the discard")
	}
}

// TestWaitAdmitConcurrentCommitters churns many waiters against one locked
// device and releases space once; every waiter must eventually resolve
// (admitted after the release) with none deadlocked.
func TestWaitAdmitConcurrentCommitters(t *testing.T) {
	d := mk(t, 100)
	if err := d.Put(Checkpoint{ID: 1, Data: make([]byte, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Lock(1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs[i] = d.WaitAdmit(ctx, 40)
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if err := d.Unlock(1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
	if d.LockedBytes() != 0 {
		t.Errorf("locked bytes %d after unlock", d.LockedBytes())
	}
}
