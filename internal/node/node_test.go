package node

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

func newNode(t *testing.T, mutate func(*Config)) (*Node, *iostore.Store) {
	t.Helper()
	store := iostore.New(nvm.Pacer{})
	cfg := Config{
		Job:       "job",
		Rank:      0,
		Store:     store,
		BlockSize: 4096,
		OnError:   func(err error) { t.Logf("async error: %v", err) },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, store
}

func snapshot(n int, tag byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i/128) ^ tag
	}
	return b
}

func waitDrained(t *testing.T, n *Node, id uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if last, ok := n.Engine().LastDrained(); ok && last >= id {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("checkpoint %d never drained", id)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Job: "x"}); err == nil {
		t.Error("missing store accepted")
	}
	if _, err := New(Config{Store: iostore.New(nvm.Pacer{})}); err == nil {
		t.Error("missing job accepted")
	}
}

func TestCommitRestoreLocal(t *testing.T) {
	n, _ := newNode(t, nil)
	snap := snapshot(50000, 1)
	id, err := n.Commit(snap, Metadata{Step: 7})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	data, meta, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelLocal {
		t.Errorf("level = %v, want local", level)
	}
	if !bytes.Equal(data, snap) {
		t.Error("restored bytes differ")
	}
	if meta.Step != 7 || meta.Job != "job" {
		t.Errorf("meta = %+v", meta)
	}
}

func TestRestorePrefersNewestLocal(t *testing.T) {
	n, _ := newNode(t, nil)
	n.Commit(snapshot(1000, 1), Metadata{Step: 1})
	n.Commit(snapshot(1000, 2), Metadata{Step: 2})
	data, meta, _, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 2 || !bytes.Equal(data, snapshot(1000, 2)) {
		t.Error("did not restore newest checkpoint")
	}
}

func TestRestoreFromIOAfterLocalLoss(t *testing.T) {
	gz, _ := compress.Lookup("gzip", 1)
	n, _ := newNode(t, func(c *Config) { c.Codec = gz })
	snap := snapshot(200000, 3)
	id, err := n.Commit(snap, Metadata{Step: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)

	// Node failure wipes NVM (§4.2.3's second recovery path).
	n.FailLocal()
	data, meta, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelIO {
		t.Errorf("level = %v, want io", level)
	}
	if !bytes.Equal(data, snap) {
		t.Error("I/O restore bytes differ")
	}
	if meta.Step != 5 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestRestoreUncompressedFromIO(t *testing.T) {
	n, _ := newNode(t, nil) // no codec: drains raw
	snap := snapshot(100000, 4)
	id, _ := n.Commit(snap, Metadata{})
	waitDrained(t, n, id)
	n.FailLocal()
	data, _, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelIO || !bytes.Equal(data, snap) {
		t.Error("raw I/O restore failed")
	}
}

func TestRestoreNoCheckpoint(t *testing.T) {
	n, _ := newNode(t, nil)
	if _, _, _, err := n.Restore(context.Background()); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestRestoreID(t *testing.T) {
	n, _ := newNode(t, nil)
	id1, _ := n.Commit(snapshot(1000, 1), Metadata{Step: 1})
	n.Commit(snapshot(1000, 2), Metadata{Step: 2})
	data, meta, level, err := n.RestoreID(context.Background(), id1)
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelLocal || meta.Step != 1 || !bytes.Equal(data, snapshot(1000, 1)) {
		t.Error("RestoreID returned wrong checkpoint")
	}
	if _, _, _, err := n.RestoreID(context.Background(), 99); err == nil {
		t.Error("missing id accepted")
	}
}

func TestWriteThroughWithoutNDP(t *testing.T) {
	n, store := newNode(t, func(c *Config) { c.DisableNDP = true })
	if n.Engine() != nil {
		t.Fatal("engine exists despite DisableNDP")
	}
	snap := snapshot(50000, 6)
	id, err := n.Commit(snap, Metadata{Step: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing reaches I/O until the host writes it through.
	if _, ok, _ := store.Latest(context.Background(), "job", 0); ok {
		t.Error("checkpoint reached I/O without host write")
	}
	if err := n.WriteThrough(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	n.FailLocal()
	data, meta, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelIO || meta.Step != 9 || !bytes.Equal(data, snap) {
		t.Error("write-through restore failed")
	}
	if err := n.WriteThrough(context.Background(), 99); err == nil {
		t.Error("write-through of missing id accepted")
	}
}

func TestRestoreThenStepEquivalence(t *testing.T) {
	// End-to-end with a real mini-app through the runtime: commit, fail,
	// restore, and verify trajectory equivalence against a twin.
	gz, _ := compress.Lookup("gzip", 1)
	n, _ := newNode(t, func(c *Config) { c.Codec = gz })

	appOrig := mustApp(t, 11)
	appTwin := mustApp(t, 11)
	for i := 0; i < 3; i++ {
		appOrig.Step()
		appTwin.Step()
	}
	var buf bytes.Buffer
	if err := appTwin.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	id, err := n.Commit(buf.Bytes(), Metadata{Step: appTwin.StepCount()})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)
	// Run the twin ahead, then fail the node AND lose the twin's memory.
	appTwin.Step()
	n.FailLocal()
	data, _, level, err := n.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if level != LevelIO {
		t.Fatalf("expected I/O restore, got %v", level)
	}
	if err := appTwin.Restore(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		appOrig.Step()
		appTwin.Step()
	}
	if appOrig.Signature() != appTwin.Signature() {
		t.Error("restored trajectory diverged")
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	n, _ := newNode(t, nil)
	n.Close()
	if _, err := n.Commit([]byte("x"), Metadata{}); err == nil {
		t.Error("commit after close accepted")
	}
	n.Close() // idempotent
}

func TestLevelString(t *testing.T) {
	if LevelLocal.String() != "local" || LevelIO.String() != "io" || LevelNone.String() != "none" {
		t.Error("level labels wrong")
	}
}
