package node_test

import (
	"context"
	"fmt"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/node"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

// Example shows the runtime's full lifecycle: commit to NVM, background
// NDP drain with compression, node loss, restore from the I/O level.
func Example() {
	store := iostore.New(nvm.Pacer{})
	gzip1, _ := compress.Lookup("gzip", 1)
	n, err := node.New(node.Config{Job: "example", Store: store, Codec: gzip1})
	if err != nil {
		panic(err)
	}
	defer n.Close()

	snapshot := make([]byte, 64<<10) // the application's serialized state
	id, err := n.Commit(snapshot, node.Metadata{Step: 12})
	if err != nil {
		panic(err)
	}
	// The NDP drains in the background; wait for it here so the example
	// is deterministic.
	for {
		if last, ok := n.Engine().LastDrained(); ok && last >= id {
			break
		}
		time.Sleep(time.Millisecond)
	}

	n.FailLocal() // the node dies; NVM contents are gone

	data, meta, level, err := n.Restore(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored %d bytes from the %s level (step %d)\n",
		len(data), level, meta.Step)
	// Output: restored 65536 bytes from the io level (step 12)
}
