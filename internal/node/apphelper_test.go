package node

import (
	"testing"

	"ndpcr/internal/miniapps"
)

// mustApp builds a small HPCCG instance for end-to-end runtime tests.
func mustApp(t *testing.T, seed uint64) miniapps.App {
	t.Helper()
	app, err := miniapps.New("HPCCG", miniapps.Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	return app
}
