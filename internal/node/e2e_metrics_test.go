package node

import (
	"context"
	"testing"
	"time"

	"ndpcr/internal/compress"
	"ndpcr/internal/metrics"
)

// End-to-end observability check: with the drain serialized (no
// compress/transmit overlap), every phase of a checkpoint's trip through
// the pipeline is a distinct span and the gap-filled timeline must tile the
// checkpoint's full wall-clock duration — the per-phase timings sum to the
// total, so the breakdown can be trusted for bottleneck attribution.
func TestPhaseTimingsSumToTotal(t *testing.T) {
	gz, _ := compress.Lookup("gzip", 1)
	n, _ := newNode(t, func(c *Config) {
		c.Codec = gz
		c.SerializeDrain = true
	})
	wallStart := time.Now()
	id, err := n.Commit(snapshot(300_000, 2), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)
	wall := time.Since(wallStart)

	tl, ok := n.Timelines().Timeline(metrics.KindCheckpoint, id)
	if !ok {
		t.Fatal("no completed checkpoint timeline")
	}
	for _, p := range []metrics.Phase{
		metrics.PhaseCommit, metrics.PhasePause, metrics.PhaseRead,
		metrics.PhaseCompress, metrics.PhaseXmit, metrics.PhaseAck,
	} {
		if tl.PhaseDuration(p) < 0 {
			t.Errorf("phase %s has negative duration", p)
		}
		found := false
		for _, s := range tl.Spans {
			if s.Phase == p {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("phase %s missing from timeline %v", p, tl.Spans)
		}
	}
	const eps = time.Millisecond
	if diff := (tl.Sum() - tl.Total()).Abs(); diff > eps {
		t.Errorf("serialized phases sum to %v but total is %v (diff %v > %v)",
			tl.Sum(), tl.Total(), diff, eps)
	}
	if tl.Total() <= 0 || tl.Total() > wall+eps {
		t.Errorf("timeline total %v outside the observed wall time %v", tl.Total(), wall)
	}

	// The restore path streams: block fetch overlaps host-parallel
	// decompression, so its fetch/decompress spans are wall-clock
	// envelopes that may overlap — the summed phases can exceed the
	// total (the realized overlap), but never undershoot it.
	n.FailLocal()
	if _, _, _, err := n.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	rtl, ok := n.Timelines().Timeline(metrics.KindRestore, id)
	if !ok {
		t.Fatal("no completed restore timeline")
	}
	if rtl.PhaseDuration(metrics.PhaseFetch) <= 0 || rtl.PhaseDuration(metrics.PhaseDecompress) <= 0 {
		t.Errorf("restore timeline missing fetch/decompress: %v", rtl.Spans)
	}
	if rtl.Sum() < rtl.Total()-eps {
		t.Errorf("restore phases sum to %v, below total %v (spans must cover the envelope)",
			rtl.Sum(), rtl.Total())
	}
}

// With the overlapped (default) drain, compression and transmission
// pipeline: the summed phase durations legitimately exceed the wall-clock
// total, and the realized overlap is their difference. The timeline must
// still anchor on the commit and finish with the ack.
func TestPhaseTimelineOverlappedDrain(t *testing.T) {
	gz, _ := compress.Lookup("gzip", 1)
	n, _ := newNode(t, func(c *Config) { c.Codec = gz })
	id, err := n.Commit(snapshot(300_000, 5), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)
	tl, ok := n.Timelines().Timeline(metrics.KindCheckpoint, id)
	if !ok {
		t.Fatal("no completed checkpoint timeline")
	}
	if tl.Spans[0].Phase != metrics.PhaseCommit {
		t.Errorf("timeline starts with %s, want commit", tl.Spans[0].Phase)
	}
	if got := tl.Spans[len(tl.Spans)-1].Phase; got != metrics.PhaseAck {
		t.Errorf("timeline ends with %s, want ack", got)
	}
	if tl.Sum() < tl.Total() {
		t.Errorf("overlapped sum %v below total %v (spans must cover the envelope)",
			tl.Sum(), tl.Total())
	}
}
