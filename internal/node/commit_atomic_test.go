package node

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/nvm"
)

// TestCommitFailureDoesNotBurnID is the regression for the ID-burn bug:
// Commit used to increment nextID before the NVM write, so a failed write
// consumed the ID and the node drifted ahead of its peers forever. A failed
// Commit must leave the counter untouched and offer the same ID on retry.
func TestCommitFailureDoesNotBurnID(t *testing.T) {
	n, _ := newNode(t, nil)
	injected := errors.New("boom")
	fail := true
	n.Device().SetFaultHook(func(op string, id uint64) error {
		if op == "put" && fail {
			return injected
		}
		return nil
	})
	if _, err := n.Commit(snapshot(1000, 1), Metadata{Step: 1}); !errors.Is(err, injected) {
		t.Fatalf("commit error = %v, want injected", err)
	}
	if got := n.NextID(); got != 1 {
		t.Fatalf("NextID after failed commit = %d, want 1 (ID not burned)", got)
	}
	fail = false
	id, err := n.Commit(snapshot(1000, 1), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("retried commit id = %d, want 1", id)
	}
	if got := n.NextID(); got != 2 {
		t.Errorf("NextID = %d, want 2", got)
	}
}

// TestCommitTooLargeDoesNotBurnID covers the original failure mode — an
// oversized snapshot rejected by the device — without any injection hooks.
func TestCommitTooLargeDoesNotBurnID(t *testing.T) {
	n, _ := newNode(t, func(cfg *Config) { cfg.NVMCapacity = 4096 })
	if _, err := n.Commit(snapshot(8192, 1), Metadata{Step: 1}); !errors.Is(err, nvm.ErrTooLarge) {
		t.Fatalf("oversized commit error = %v, want ErrTooLarge", err)
	}
	id, err := n.Commit(snapshot(1024, 1), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("commit after rejected oversize got id %d, want 1", id)
	}
}

// TestResyncNextIDOnlyRaises verifies the cluster's forward resync cannot
// rewind a node's counter (rewinding would reuse a poisoned ID).
func TestResyncNextIDOnlyRaises(t *testing.T) {
	n, _ := newNode(t, nil)
	if _, err := n.Commit(snapshot(100, 1), Metadata{Step: 1}); err != nil {
		t.Fatal(err)
	}
	n.ResyncNextID(7)
	if got := n.NextID(); got != 7 {
		t.Errorf("NextID after resync = %d, want 7", got)
	}
	n.ResyncNextID(3)
	if got := n.NextID(); got != 7 {
		t.Errorf("NextID lowered to %d by a stale resync", got)
	}
}

// TestDiscardCommitErasesEveryLevel verifies the per-node abort path: after
// a drained commit is discarded, neither the NVM nor the global store holds
// the ID, and discarding an unknown ID is a harmless no-op.
func TestDiscardCommitErasesEveryLevel(t *testing.T) {
	n, store := newNode(t, nil)
	id, err := n.Commit(snapshot(5000, 1), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, n, id)
	if _, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: id}); err != nil {
		t.Fatalf("drained object missing before discard: %v", err)
	}
	n.DiscardCommit(id)
	for _, got := range n.Device().IDs() {
		if got == id {
			t.Errorf("NVM still holds discarded checkpoint %d", id)
		}
	}
	if _, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: id}); !errors.Is(err, iostore.ErrNotFound) {
		t.Errorf("global object survives discard: err = %v", err)
	}
	n.DiscardCommit(999) // never committed: must not panic or error
}

// TestCommitIDsStayDenseAcrossFailures exercises a failure mid-sequence:
// IDs before and after the failed commit stay consecutive.
func TestCommitIDsStayDenseAcrossFailures(t *testing.T) {
	n, _ := newNode(t, nil)
	failOn := uint64(0)
	n.Device().SetFaultHook(func(op string, id uint64) error {
		if op == "put" && id == failOn {
			return fmt.Errorf("scheduled failure at %d", id)
		}
		return nil
	})
	commit := func() (uint64, error) { return n.Commit(snapshot(500, 2), Metadata{Step: 1}) }
	if id, err := commit(); err != nil || id != 1 {
		t.Fatalf("commit 1: id=%d err=%v", id, err)
	}
	failOn = 2
	if _, err := commit(); err == nil {
		t.Fatal("scheduled failure did not fire")
	}
	failOn = 0
	for want := uint64(2); want <= 4; want++ {
		id, err := commit()
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Errorf("commit got id %d, want %d", id, want)
		}
	}
}
