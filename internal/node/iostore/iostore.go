// Package iostore models the global (parallel-file-system) checkpoint
// store shared by all compute nodes. Objects are keyed by (job, rank,
// checkpoint ID) and carry the framing metadata needed to reassemble and
// decompress a drained checkpoint. Per-node bandwidth pacing models the
// paper's 100 MB/s effective per-node share of global I/O (§3.4).
package iostore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ndpcr/internal/metrics"
	"ndpcr/internal/node/nvm"
)

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("iostore: object not found")

// ErrUnsupported reports an operation the backend cannot serve at all —
// e.g. keys enumeration against an iod server predating opKeys. Callers
// that can degrade (a rebalance planner falling back to per-scope IDs)
// match it with errors.Is; everyone else surfaces it like any failure.
var ErrUnsupported = errors.New("iostore: operation unsupported by this backend")

// Key identifies one rank's checkpoint.
type Key struct {
	Job  string
	Rank int
	ID   uint64
}

func (k Key) String() string { return fmt.Sprintf("%s/rank%d/ckpt%d", k.Job, k.Rank, k.ID) }

// Object is a stored checkpoint plus reassembly metadata.
type Object struct {
	Key Key
	// Codec names the compression codec ("" = uncompressed).
	Codec string
	// CodecLevel is the codec's level (meaningful when Codec != "").
	CodecLevel int
	// OrigSize is the uncompressed payload size (the checkpoint for full
	// objects, the encoded patch for incremental ones).
	OrigSize int64
	// DeltaBase, when non-zero, marks this object as an incremental
	// patch applying on top of checkpoint DeltaBase (same job/rank).
	DeltaBase uint64
	// Blocks holds the (possibly compressed) data blocks in order. Blocks
	// are independent so restore can decompress them in parallel (§4.3).
	Blocks [][]byte
	// Meta carries BLCR-style identification.
	Meta map[string]string
}

// StoredSize returns the total stored bytes across blocks.
func (o Object) StoredSize() int64 {
	var n int64
	for _, b := range o.Blocks {
		n += int64(len(b))
	}
	return n
}

// Backend is the global-store surface the node runtime drains to and
// restores from — one unified, error-first, context-first interface.
// Store implements it in-process; internal/iod implements it over TCP
// against a remote I/O node (§4.2.2: "the NDP must be able to operate the
// relevant system code for running the network stack"); internal/shardstore
// implements it across many I/O nodes with replication.
//
// Design rules the surface obeys (learned the hard way — the prior API
// masked transport failures behind bool "ok"s and hid the streaming and
// error-surfacing extensions behind optional type assertions):
//
//   - Every method can report failure. Stat/IDs/Latest distinguish "this
//     level has no checkpoint" (ok=false / empty, err=nil) from "this level
//     is unreachable" (err != nil): over a network transport the conflation
//     silently deletes the I/O level from restart-line intersections.
//   - Delete returns an error, so an abort/rollback path can tell a leaked
//     object from a cleaned one.
//   - Every method takes a context: shard failover, lane-reconnect backoff
//     and retry loops in remote implementations honor cancelation and
//     deadlines.
//   - Block streaming (StatBlocks/GetBlock) is part of the surface, not an
//     optional assertion. StatBlocks ok=false with err=nil means "cannot
//     serve block reads for this key" (absent object, or — for the iod
//     client — a server predating the streaming ops) and the caller falls
//     back to a whole-object Get.
type Backend interface {
	Put(ctx context.Context, o Object) error
	PutBlock(ctx context.Context, key Key, meta Object, index int, block []byte) error
	Get(ctx context.Context, key Key) (Object, error)
	Delete(ctx context.Context, key Key) error
	Stat(ctx context.Context, key Key) (Object, bool, error)
	IDs(ctx context.Context, job string, rank int) ([]uint64, error)
	Latest(ctx context.Context, job string, rank int) (uint64, bool, error)
	StatBlocks(ctx context.Context, key Key) (meta Object, blocks int, ok bool, err error)
	GetBlock(ctx context.Context, key Key, index int) ([]byte, error)
	// Keys enumerates every object key the backend holds, sorted by
	// (job, rank, ID). It is the inventory surface that makes repair and
	// rebalance restart-blind: a fresh shardstore client (empty in-memory
	// assignment map) can still discover what each backend holds, compute
	// placement, and fix under-replication for objects written by an
	// earlier process. Backends that cannot enumerate (an old iod server)
	// return an error matching ErrUnsupported.
	Keys(ctx context.Context) ([]Key, error)
}

// Store is the shared global store. All methods are safe for concurrent
// use by many node goroutines.
type Store struct {
	mu      sync.Mutex
	objects map[Key]Object
	pacer   nvm.Pacer // per-node share pacing applied to each transfer

	// Metrics (nil until Instrument is called).
	mWriteBytes *metrics.Histogram
	mReadBytes  *metrics.Histogram
}

// Instrument registers the store's metrics (object count, resident bytes,
// transfer sizes) with r.
func (s *Store) Instrument(r *metrics.Registry) {
	r.GaugeFunc("ndpcr_iostore_objects", "checkpoint objects resident in the global store",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.objects))
		})
	r.GaugeFunc("ndpcr_iostore_stored_bytes", "bytes resident in the global store",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var n int64
			for _, o := range s.objects {
				n += o.StoredSize()
			}
			return float64(n)
		})
	s.mWriteBytes = r.Histogram("ndpcr_iostore_write_bytes", "bytes per store write", metrics.UnitBytes)
	s.mReadBytes = r.Histogram("ndpcr_iostore_read_bytes", "bytes per store read", metrics.UnitBytes)
}

// New creates a store whose transfers are paced at the given per-node
// bandwidth (zero disables pacing).
func New(pacer nvm.Pacer) *Store {
	return &Store{objects: make(map[Key]Object), pacer: pacer}
}

// Put stores an object, replacing any previous version. Blocks are copied.
func (s *Store) Put(ctx context.Context, o Object) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if o.Key.Job == "" {
		return errors.New("iostore: empty job name")
	}
	cp := o
	cp.Blocks = make([][]byte, len(o.Blocks))
	for i, b := range o.Blocks {
		cp.Blocks[i] = append([]byte(nil), b...)
	}
	if o.Meta != nil {
		cp.Meta = make(map[string]string, len(o.Meta))
		for k, v := range o.Meta {
			cp.Meta[k] = v
		}
	}
	s.mu.Lock()
	s.objects[o.Key] = cp
	s.mu.Unlock()
	s.pacer.Move(int(cp.StoredSize()))
	if s.mWriteBytes != nil {
		s.mWriteBytes.Observe(cp.StoredSize())
	}
	return nil
}

// PutBlock appends one block to an object, creating it on first use. This
// is the streaming path the NDP uses: blocks arrive as they are compressed
// (§4.2.2), each paced individually.
func (s *Store) PutBlock(ctx context.Context, key Key, meta Object, index int, block []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if key.Job == "" {
		return errors.New("iostore: empty job name")
	}
	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		o = meta
		o.Key = key
		o.Blocks = nil
	}
	for len(o.Blocks) <= index {
		o.Blocks = append(o.Blocks, nil)
	}
	o.Blocks[index] = append([]byte(nil), block...)
	s.objects[key] = o
	s.mu.Unlock()
	s.pacer.Move(len(block))
	if s.mWriteBytes != nil {
		s.mWriteBytes.Observe(int64(len(block)))
	}
	return nil
}

// Delete removes an object (used when an aborted drain must not leave a
// torn checkpoint behind). Deleting an absent object is not an error.
func (s *Store) Delete(ctx context.Context, key Key) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
	return nil
}

// Get returns an object, pacing the full transfer.
func (s *Store) Get(ctx context.Context, key Key) (Object, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, err
	}
	s.mu.Lock()
	o, ok := s.objects[key]
	s.mu.Unlock()
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.pacer.Move(int(o.StoredSize()))
	if s.mReadBytes != nil {
		s.mReadBytes.Observe(o.StoredSize())
	}
	return o, nil
}

// Stat returns an object's metadata without pacing a transfer. The
// in-process store is always reachable, so err is always nil.
func (s *Store) Stat(ctx context.Context, key Key) (Object, bool, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, false, nil
	}
	o.Blocks = nil
	return o, true, nil
}

// IDs returns the checkpoint IDs stored for (job, rank), ascending.
func (s *Store) IDs(ctx context.Context, job string, rank int) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for k := range s.objects {
		if k.Job == job && k.Rank == rank {
			out = append(out, k.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Keys enumerates every stored object key, sorted by (job, rank, ID).
func (s *Store) Keys(ctx context.Context) ([]Key, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	out := make([]Key, 0, len(s.objects))
	for k := range s.objects {
		out = append(out, k)
	}
	s.mu.Unlock()
	SortKeys(out)
	return out, nil
}

// SortKeys orders keys by (job, rank, ID) — the canonical enumeration
// order every Backend's Keys must produce.
func SortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.ID < b.ID
	})
}

// Latest returns the newest checkpoint ID for (job, rank).
func (s *Store) Latest(ctx context.Context, job string, rank int) (uint64, bool, error) {
	ids, err := s.IDs(ctx, job, rank)
	if err != nil || len(ids) == 0 {
		return 0, false, err
	}
	return ids[len(ids)-1], true, nil
}

// StatBlocks returns metadata plus block count, no payload and no pacing
// (pacing charges the blocks as they are fetched).
func (s *Store) StatBlocks(ctx context.Context, key Key) (Object, int, bool, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, 0, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, 0, false, nil
	}
	n := len(o.Blocks)
	o.Blocks = nil
	return o, n, true, nil
}

// GetBlock returns one block's payload, paced individually so a streamed
// restore pays the same total transfer cost as a whole-object Get.
func (s *Store) GetBlock(ctx context.Context, key Key, index int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	o, ok := s.objects[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if index < 0 || index >= len(o.Blocks) {
		return nil, fmt.Errorf("iostore: %s block %d out of range (object has %d)", key, index, len(o.Blocks))
	}
	b := o.Blocks[index]
	s.pacer.Move(len(b))
	if s.mReadBytes != nil {
		s.mReadBytes.Observe(int64(len(b)))
	}
	return b, nil
}

// Store satisfies the unified Backend surface.
var _ Backend = (*Store)(nil)
