// Package iostore models the global (parallel-file-system) checkpoint
// store shared by all compute nodes. Objects are keyed by (job, rank,
// checkpoint ID) and carry the framing metadata needed to reassemble and
// decompress a drained checkpoint. Per-node bandwidth pacing models the
// paper's 100 MB/s effective per-node share of global I/O (§3.4).
package iostore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ndpcr/internal/metrics"
	"ndpcr/internal/node/nvm"
)

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("iostore: object not found")

// Key identifies one rank's checkpoint.
type Key struct {
	Job  string
	Rank int
	ID   uint64
}

func (k Key) String() string { return fmt.Sprintf("%s/rank%d/ckpt%d", k.Job, k.Rank, k.ID) }

// Object is a stored checkpoint plus reassembly metadata.
type Object struct {
	Key Key
	// Codec names the compression codec ("" = uncompressed).
	Codec string
	// CodecLevel is the codec's level (meaningful when Codec != "").
	CodecLevel int
	// OrigSize is the uncompressed payload size (the checkpoint for full
	// objects, the encoded patch for incremental ones).
	OrigSize int64
	// DeltaBase, when non-zero, marks this object as an incremental
	// patch applying on top of checkpoint DeltaBase (same job/rank).
	DeltaBase uint64
	// Blocks holds the (possibly compressed) data blocks in order. Blocks
	// are independent so restore can decompress them in parallel (§4.3).
	Blocks [][]byte
	// Meta carries BLCR-style identification.
	Meta map[string]string
}

// StoredSize returns the total stored bytes across blocks.
func (o Object) StoredSize() int64 {
	var n int64
	for _, b := range o.Blocks {
		n += int64(len(b))
	}
	return n
}

// API is the global-store surface the node runtime drains to and restores
// from. Store implements it in-process; internal/iod implements it over
// TCP against a remote I/O node, which is how a real NDP would reach the
// parallel file system (§4.2.2: "the NDP must be able to operate the
// relevant system code for running the network stack").
type API interface {
	Put(o Object) error
	PutBlock(key Key, meta Object, index int, block []byte) error
	Delete(key Key)
	Get(key Key) (Object, error)
	Stat(key Key) (Object, bool)
	IDs(job string, rank int) []uint64
	Latest(job string, rank int) (uint64, bool)
}

// BlockReader is the optional streaming extension of API: stores that
// implement it let a restore fetch a checkpoint block by block — metadata
// and block count first, then each block individually — so decompression of
// block i can overlap the fetch of block i+1 the same way the NDP drain
// overlaps compression with transmission (§4.3 mirrored onto §4.2.2).
//
// StatBlocks reports the object's metadata (no payload) and its block
// count; ok == false means the store cannot serve block reads for this key
// (object absent, transport failure, or — for the iod client — a server
// that predates the streaming ops), and the caller falls back to a
// whole-object Get.
type BlockReader interface {
	StatBlocks(key Key) (meta Object, blocks int, ok bool)
	GetBlock(key Key, index int) ([]byte, error)
}

// Inventory is the optional error-surfacing extension of the read-only
// inventory calls. API's Stat/IDs/Latest cannot distinguish "this level has
// no checkpoint" from "this level is unreachable"; over a network transport
// that conflation silently deletes the I/O level from restart-line
// intersections. Stores that implement Inventory report transport failures
// as errors so the cluster can tell the two apart.
type Inventory interface {
	StatErr(key Key) (Object, bool, error)
	IDsErr(job string, rank int) ([]uint64, error)
	LatestErr(job string, rank int) (uint64, bool, error)
}

// Store is the shared global store. All methods are safe for concurrent
// use by many node goroutines.
type Store struct {
	mu      sync.Mutex
	objects map[Key]Object
	pacer   nvm.Pacer // per-node share pacing applied to each transfer

	// Metrics (nil until Instrument is called).
	mWriteBytes *metrics.Histogram
	mReadBytes  *metrics.Histogram
}

// Instrument registers the store's metrics (object count, resident bytes,
// transfer sizes) with r.
func (s *Store) Instrument(r *metrics.Registry) {
	r.GaugeFunc("ndpcr_iostore_objects", "checkpoint objects resident in the global store",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.objects))
		})
	r.GaugeFunc("ndpcr_iostore_stored_bytes", "bytes resident in the global store",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var n int64
			for _, o := range s.objects {
				n += o.StoredSize()
			}
			return float64(n)
		})
	s.mWriteBytes = r.Histogram("ndpcr_iostore_write_bytes", "bytes per store write", metrics.UnitBytes)
	s.mReadBytes = r.Histogram("ndpcr_iostore_read_bytes", "bytes per store read", metrics.UnitBytes)
}

// New creates a store whose transfers are paced at the given per-node
// bandwidth (zero disables pacing).
func New(pacer nvm.Pacer) *Store {
	return &Store{objects: make(map[Key]Object), pacer: pacer}
}

// Put stores an object, replacing any previous version. Blocks are copied.
func (s *Store) Put(o Object) error {
	if o.Key.Job == "" {
		return errors.New("iostore: empty job name")
	}
	cp := o
	cp.Blocks = make([][]byte, len(o.Blocks))
	for i, b := range o.Blocks {
		cp.Blocks[i] = append([]byte(nil), b...)
	}
	if o.Meta != nil {
		cp.Meta = make(map[string]string, len(o.Meta))
		for k, v := range o.Meta {
			cp.Meta[k] = v
		}
	}
	s.mu.Lock()
	s.objects[o.Key] = cp
	s.mu.Unlock()
	s.pacer.Move(int(cp.StoredSize()))
	if s.mWriteBytes != nil {
		s.mWriteBytes.Observe(cp.StoredSize())
	}
	return nil
}

// PutBlock appends one block to an object, creating it on first use. This
// is the streaming path the NDP uses: blocks arrive as they are compressed
// (§4.2.2), each paced individually.
func (s *Store) PutBlock(key Key, meta Object, index int, block []byte) error {
	if key.Job == "" {
		return errors.New("iostore: empty job name")
	}
	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		o = meta
		o.Key = key
		o.Blocks = nil
	}
	for len(o.Blocks) <= index {
		o.Blocks = append(o.Blocks, nil)
	}
	o.Blocks[index] = append([]byte(nil), block...)
	s.objects[key] = o
	s.mu.Unlock()
	s.pacer.Move(len(block))
	if s.mWriteBytes != nil {
		s.mWriteBytes.Observe(int64(len(block)))
	}
	return nil
}

// Delete removes an object (used when an aborted drain must not leave a
// torn checkpoint behind).
func (s *Store) Delete(key Key) {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
}

// Get returns an object, pacing the full transfer.
func (s *Store) Get(key Key) (Object, error) {
	s.mu.Lock()
	o, ok := s.objects[key]
	s.mu.Unlock()
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.pacer.Move(int(o.StoredSize()))
	if s.mReadBytes != nil {
		s.mReadBytes.Observe(o.StoredSize())
	}
	return o, nil
}

// Stat returns an object's metadata without pacing a transfer.
func (s *Store) Stat(key Key) (Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, false
	}
	o.Blocks = nil
	return o, true
}

// IDs returns the checkpoint IDs stored for (job, rank), ascending.
func (s *Store) IDs(job string, rank int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for k := range s.objects {
		if k.Job == job && k.Rank == rank {
			out = append(out, k.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Latest returns the newest checkpoint ID for (job, rank).
func (s *Store) Latest(job string, rank int) (uint64, bool) {
	ids := s.IDs(job, rank)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[len(ids)-1], true
}

// StatBlocks implements BlockReader: metadata plus block count, no payload
// and no pacing (pacing charges the blocks as they are fetched).
func (s *Store) StatBlocks(key Key) (Object, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, 0, false
	}
	n := len(o.Blocks)
	o.Blocks = nil
	return o, n, true
}

// GetBlock implements BlockReader: one block's payload, paced individually
// so a streamed restore pays the same total transfer cost as a whole-object
// Get.
func (s *Store) GetBlock(key Key, index int) ([]byte, error) {
	s.mu.Lock()
	o, ok := s.objects[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if index < 0 || index >= len(o.Blocks) {
		return nil, fmt.Errorf("iostore: %s block %d out of range (object has %d)", key, index, len(o.Blocks))
	}
	b := o.Blocks[index]
	s.pacer.Move(len(b))
	if s.mReadBytes != nil {
		s.mReadBytes.Observe(int64(len(b)))
	}
	return b, nil
}

// StatErr implements Inventory; the in-process store is always reachable.
func (s *Store) StatErr(key Key) (Object, bool, error) {
	o, ok := s.Stat(key)
	return o, ok, nil
}

// IDsErr implements Inventory; the in-process store is always reachable.
func (s *Store) IDsErr(job string, rank int) ([]uint64, error) {
	return s.IDs(job, rank), nil
}

// LatestErr implements Inventory; the in-process store is always reachable.
func (s *Store) LatestErr(job string, rank int) (uint64, bool, error) {
	id, ok := s.Latest(job, rank)
	return id, ok, nil
}

// Store satisfies API and its streaming/inventory extensions.
var (
	_ API         = (*Store)(nil)
	_ BlockReader = (*Store)(nil)
	_ Inventory   = (*Store)(nil)
)
