package iostore

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"ndpcr/internal/node/nvm"
	"ndpcr/internal/units"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New(nvm.Pacer{})
	obj := Object{
		Key:      Key{Job: "heat", Rank: 3, ID: 7},
		Codec:    "gzip",
		OrigSize: 11,
		Blocks:   [][]byte{[]byte("hello"), []byte(" world")},
		Meta:     map[string]string{"step": "42"},
	}
	if err := s.Put(context.Background(), obj); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), obj.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Codec != "gzip" || got.Meta["step"] != "42" || len(got.Blocks) != 2 {
		t.Errorf("got %+v", got)
	}
	if got.StoredSize() != 11 {
		t.Errorf("stored size = %d", got.StoredSize())
	}
	// Stored blocks must not alias the caller's.
	obj.Blocks[0][0] = 'X'
	got2, _ := s.Get(context.Background(), obj.Key)
	if got2.Blocks[0][0] == 'X' {
		t.Error("store aliases caller blocks")
	}
}

func TestPutValidation(t *testing.T) {
	s := New(nvm.Pacer{})
	if err := s.Put(context.Background(), Object{}); err == nil {
		t.Error("empty job accepted")
	}
	if err := s.PutBlock(context.Background(), Key{}, Object{}, 0, nil); err == nil {
		t.Error("PutBlock with empty job accepted")
	}
}

func TestGetMissing(t *testing.T) {
	s := New(nvm.Pacer{})
	if _, err := s.Get(context.Background(), Key{Job: "x", Rank: 0, ID: 1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, ok, _ := s.Stat(context.Background(), Key{Job: "x"}); ok {
		t.Error("Stat found missing object")
	}
	if _, ok, _ := s.Latest(context.Background(), "x", 0); ok {
		t.Error("Latest on empty store")
	}
}

func TestPutBlockStreaming(t *testing.T) {
	s := New(nvm.Pacer{})
	key := Key{Job: "j", Rank: 1, ID: 5}
	meta := Object{Codec: "lz4", CodecLevel: 1, OrigSize: 6}
	// Blocks can arrive out of order (pipeline reordering is upstream,
	// but the store tolerates sparse writes).
	if err := s.PutBlock(context.Background(), key, meta, 1, []byte("def")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlock(context.Background(), key, meta, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Codec != "lz4" || got.CodecLevel != 1 {
		t.Errorf("meta not preserved: %+v", got)
	}
	joined := append(append([]byte{}, got.Blocks[0]...), got.Blocks[1]...)
	if !bytes.Equal(joined, []byte("abcdef")) {
		t.Errorf("blocks = %q", joined)
	}
}

func TestDelete(t *testing.T) {
	s := New(nvm.Pacer{})
	key := Key{Job: "j", Rank: 0, ID: 1}
	s.Put(context.Background(), Object{Key: key, Blocks: [][]byte{[]byte("x")}})
	s.Delete(context.Background(), key)
	if _, err := s.Get(context.Background(), key); !errors.Is(err, ErrNotFound) {
		t.Error("delete did not remove object")
	}
	s.Delete(context.Background(), key) // idempotent
}

func TestIDsAndLatest(t *testing.T) {
	s := New(nvm.Pacer{})
	for _, id := range []uint64{5, 1, 9} {
		s.Put(context.Background(), Object{Key: Key{Job: "j", Rank: 2, ID: id}, Blocks: [][]byte{{1}}})
	}
	s.Put(context.Background(), Object{Key: Key{Job: "j", Rank: 3, ID: 100}, Blocks: [][]byte{{1}}})
	s.Put(context.Background(), Object{Key: Key{Job: "other", Rank: 2, ID: 200}, Blocks: [][]byte{{1}}})

	ids, _ := s.IDs(context.Background(), "j", 2)
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 9 {
		t.Errorf("ids = %v", ids)
	}
	if latest, ok, _ := s.Latest(context.Background(), "j", 2); !ok || latest != 9 {
		t.Errorf("latest = %v, %v", latest, ok)
	}
}

func TestPacing(t *testing.T) {
	var slept units.Seconds
	s := New(nvm.Pacer{Bandwidth: 100 * units.MBps, Sleep: func(d units.Seconds) { slept += d }})
	key := Key{Job: "j", Rank: 0, ID: 1}
	s.Put(context.Background(), Object{Key: key, Blocks: [][]byte{make([]byte, 50_000_000)}}) // 0.5 s
	s.Get(context.Background(), key)                                                          // 0.5 s
	if slept < 0.99 || slept > 1.01 {
		t.Errorf("paced %v, want ~1 s", slept)
	}
	before := slept
	s.Stat(context.Background(), key)
	s.IDs(context.Background(), "j", 0)
	if slept != before {
		t.Error("metadata operations paced")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Job: "heat", Rank: 3, ID: 7}
	if k.String() != "heat/rank3/ckpt7" {
		t.Errorf("String = %q", k.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	s := New(nvm.Pacer{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := Key{Job: "j", Rank: g, ID: uint64(i)}
				if err := s.PutBlock(context.Background(), key, Object{OrigSize: 4}, 0, []byte("data")); err != nil {
					t.Errorf("PutBlock: %v", err)
					return
				}
				s.Get(context.Background(), key)
				s.Latest(context.Background(), "j", g)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if latest, ok, _ := s.Latest(context.Background(), "j", g); !ok || latest != 99 {
			t.Errorf("rank %d latest = %v, %v", g, latest, ok)
		}
	}
}
