package iostore

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"ndpcr/internal/node/nvm"
	"ndpcr/internal/units"
)

func TestDedupRoundTrip(t *testing.T) {
	s := NewDedup(nvm.Pacer{})
	obj := Object{
		Key:      Key{Job: "j", Rank: 0, ID: 1},
		Codec:    "gzip",
		OrigSize: 8,
		Blocks:   [][]byte{[]byte("aaaa"), []byte("bbbb")},
		Meta:     map[string]string{"step": "1"},
	}
	if err := s.Put(context.Background(), obj); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), obj.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Codec != "gzip" || got.Meta["step"] != "1" ||
		!bytes.Equal(got.Blocks[0], []byte("aaaa")) || !bytes.Equal(got.Blocks[1], []byte("bbbb")) {
		t.Errorf("got %+v", got)
	}
}

func TestDedupSharesAcrossRanks(t *testing.T) {
	// Neighbouring ranks with identical blocks (halo regions, constant
	// tables): stored once.
	s := NewDedup(nvm.Pacer{})
	shared := bytes.Repeat([]byte("halo"), 1000)
	uniqueA := bytes.Repeat([]byte("A"), 4000)
	uniqueB := bytes.Repeat([]byte("B"), 4000)
	for rank, unique := range [][]byte{uniqueA, uniqueB} {
		key := Key{Job: "j", Rank: rank, ID: 1}
		if err := s.PutBlock(context.Background(), key, Object{OrigSize: 8000}, 0, shared); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBlock(context.Background(), key, Object{OrigSize: 8000}, 1, unique); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LogicalBytes != 16000 {
		t.Errorf("logical = %d", st.LogicalBytes)
	}
	if st.PhysicalBytes != 12000 { // shared stored once
		t.Errorf("physical = %d", st.PhysicalBytes)
	}
	if st.UniqueBlocks != 3 {
		t.Errorf("unique blocks = %d", st.UniqueBlocks)
	}
	if f := st.Factor(); f < 0.24 || f > 0.26 {
		t.Errorf("dedup factor = %v, want 0.25", f)
	}
	// Both ranks still read their own full data.
	for rank := 0; rank < 2; rank++ {
		got, err := s.Get(context.Background(), Key{Job: "j", Rank: rank, ID: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Blocks[0], shared) {
			t.Errorf("rank %d shared block corrupted", rank)
		}
	}
}

func TestDedupConsecutiveCheckpoints(t *testing.T) {
	// Consecutive checkpoints of one rank share most blocks.
	s := NewDedup(nvm.Pacer{})
	stable := bytes.Repeat([]byte{7}, 8192)
	for id := uint64(1); id <= 5; id++ {
		key := Key{Job: "j", Rank: 0, ID: id}
		changing := bytes.Repeat([]byte{byte(id)}, 8192)
		s.PutBlock(context.Background(), key, Object{}, 0, stable)
		s.PutBlock(context.Background(), key, Object{}, 1, changing)
	}
	st := s.Stats()
	// 10 logical blocks, 6 unique (1 stable + 5 changing).
	if st.UniqueBlocks != 6 {
		t.Errorf("unique = %d, want 6", st.UniqueBlocks)
	}
	if st.Factor() < 0.39 || st.Factor() > 0.41 {
		t.Errorf("factor = %v, want 0.4", st.Factor())
	}
}

func TestDedupDeleteReleasesRefs(t *testing.T) {
	s := NewDedup(nvm.Pacer{})
	shared := []byte("shared-block-content")
	a := Key{Job: "j", Rank: 0, ID: 1}
	b := Key{Job: "j", Rank: 1, ID: 1}
	s.PutBlock(context.Background(), a, Object{}, 0, shared)
	s.PutBlock(context.Background(), b, Object{}, 0, shared)

	s.Delete(context.Background(), a)
	// Still readable through b.
	if got, err := s.Get(context.Background(), b); err != nil || !bytes.Equal(got.Blocks[0], shared) {
		t.Fatal("shared block lost after one deleter")
	}
	if _, err := s.Get(context.Background(), a); !errors.Is(err, ErrNotFound) {
		t.Error("deleted object still present")
	}
	s.Delete(context.Background(), b)
	st := s.Stats()
	if st.PhysicalBytes != 0 || st.LogicalBytes != 0 || st.UniqueBlocks != 0 {
		t.Errorf("residual after full delete: %+v", st)
	}
	s.Delete(context.Background(), b) // idempotent
}

func TestDedupBlockReplacement(t *testing.T) {
	s := NewDedup(nvm.Pacer{})
	key := Key{Job: "j", Rank: 0, ID: 1}
	s.PutBlock(context.Background(), key, Object{}, 0, []byte("old-content"))
	s.PutBlock(context.Background(), key, Object{}, 0, []byte("new-content"))
	got, err := s.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got.Blocks[0], []byte("new-content")) {
		t.Fatal("replacement failed")
	}
	if st := s.Stats(); st.UniqueBlocks != 1 {
		t.Errorf("old content leaked: %+v", st)
	}
}

func TestDedupPacingOnlyNewContent(t *testing.T) {
	var slept units.Seconds
	s := NewDedup(nvm.Pacer{Bandwidth: 1 * units.MBps, Sleep: func(d units.Seconds) { slept += d }})
	block := make([]byte, 500_000) // 0.5 s at 1 MB/s
	s.PutBlock(context.Background(), Key{Job: "j", Rank: 0, ID: 1}, Object{}, 0, block)
	first := slept
	if first < 0.49 || first > 0.51 {
		t.Fatalf("first write paced %v", first)
	}
	// The duplicate write moves no data.
	s.PutBlock(context.Background(), Key{Job: "j", Rank: 1, ID: 1}, Object{}, 0, block)
	if slept != first {
		t.Errorf("duplicate write paced %v extra", slept-first)
	}
	// Reads always pace the logical size.
	s.Get(context.Background(), Key{Job: "j", Rank: 1, ID: 1})
	if slept-first < 0.49 {
		t.Error("read did not pace logical transfer")
	}
}

func TestDedupValidation(t *testing.T) {
	s := NewDedup(nvm.Pacer{})
	if err := s.Put(context.Background(), Object{}); err == nil {
		t.Error("empty job accepted")
	}
	if err := s.PutBlock(context.Background(), Key{}, Object{}, 0, nil); err == nil {
		t.Error("PutBlock empty job accepted")
	}
	if _, ok, _ := s.Stat(context.Background(), Key{Job: "x"}); ok {
		t.Error("missing Stat found")
	}
	if _, ok, _ := s.Latest(context.Background(), "x", 0); ok {
		t.Error("Latest on empty store")
	}
	if st := s.Stats(); st.Factor() != 0 {
		t.Error("empty store factor should be 0")
	}
}

func TestDedupMetadataOnlyObject(t *testing.T) {
	s := NewDedup(nvm.Pacer{})
	key := Key{Job: "j", Rank: 0, ID: 9}
	if err := s.Put(context.Background(), Object{Key: key, Meta: map[string]string{"step": "3"}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), key)
	if err != nil || got.Meta["step"] != "3" {
		t.Error("metadata-only object lost")
	}
	if latest, ok, _ := s.Latest(context.Background(), "j", 0); !ok || latest != 9 {
		t.Errorf("latest = %d, %v", latest, ok)
	}
	if ids, _ := s.IDs(context.Background(), "j", 0); len(ids) != 1 || ids[0] != 9 {
		t.Errorf("ids = %v", ids)
	}
}

func TestDedupBehindNodeRuntime(t *testing.T) {
	// DedupStore satisfies iostore.Backend; drains from two runtimes with
	// overlapping content share storage. (Node runtimes are exercised via
	// the iod test for TCP; here the in-process interface suffices.)
	var api Backend = NewDedup(nvm.Pacer{})
	shared := bytes.Repeat([]byte("common"), 2048)
	for rank := 0; rank < 2; rank++ {
		key := Key{Job: "j", Rank: rank, ID: 1}
		if err := api.PutBlock(context.Background(), key, Object{OrigSize: int64(len(shared))}, 0, shared); err != nil {
			t.Fatal(err)
		}
	}
	st := api.(*DedupStore).Stats()
	if st.PhysicalBytes >= st.LogicalBytes {
		t.Errorf("no sharing: %+v", st)
	}
}
