package iostore

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ndpcr/internal/metrics"
	"ndpcr/internal/node/nvm"
)

// DedupStore is a content-addressed variant of the global store: block
// payloads are stored once per distinct content, shared across checkpoints
// *and across ranks*. This implements the second half of the paper
// conclusion's proposal — the NDP/IO system "compar[ing] data for
// consecutive checkpoints and checkpoints of neighboring MPI rank" — at
// the storage side: identical blocks from neighbouring ranks (halo
// regions, constant tables, zero pages) occupy storage and I/O once.
//
// Only *new* content pays the transfer pacing, modelling the bandwidth
// saving of dedup-aware I/O nodes.
type DedupStore struct {
	mu      sync.Mutex
	objects map[Key]dedupObject
	blocks  map[[sha256.Size]byte]*refBlock
	pacer   nvm.Pacer

	logicalBytes  int64 // as if every block were stored
	physicalBytes int64 // actually resident

	// Metrics (nil until Instrument is called).
	mHits   *metrics.Counter
	mMisses *metrics.Counter
}

// Instrument registers the dedup store's metrics with r. The dedup hit
// rate is hits / (hits + misses); the byte-level saving is sampled from the
// logical/physical accounting.
func (s *DedupStore) Instrument(r *metrics.Registry) {
	s.mHits = r.Counter("ndpcr_iostore_dedup_hits_total", "block writes whose content was already resident")
	s.mMisses = r.Counter("ndpcr_iostore_dedup_misses_total", "block writes that stored fresh content")
	r.GaugeFunc("ndpcr_iostore_dedup_logical_bytes", "bytes as if every block were stored",
		func() float64 { return float64(s.Stats().LogicalBytes) })
	r.GaugeFunc("ndpcr_iostore_dedup_physical_bytes", "bytes actually resident after dedup",
		func() float64 { return float64(s.Stats().PhysicalBytes) })
	r.GaugeFunc("ndpcr_iostore_dedup_factor", "1 - physical/logical storage ratio",
		func() float64 { return s.Stats().Factor() })
}

type dedupObject struct {
	meta    Object // Blocks nil; metadata only
	digests [][sha256.Size]byte
	present []bool // sparse PutBlock support
}

type refBlock struct {
	data []byte
	refs int
}

var _ Backend = (*DedupStore)(nil)

// NewDedup creates a content-addressed store paced like New.
func NewDedup(pacer nvm.Pacer) *DedupStore {
	return &DedupStore{
		objects: make(map[Key]dedupObject),
		blocks:  make(map[[sha256.Size]byte]*refBlock),
		pacer:   pacer,
	}
}

// Put stores a whole object.
func (s *DedupStore) Put(ctx context.Context, o Object) error {
	if o.Key.Job == "" {
		return errors.New("iostore: empty job name")
	}
	for i, b := range o.Blocks {
		if err := s.PutBlock(ctx, o.Key, o, i, b); err != nil {
			return err
		}
	}
	if len(o.Blocks) == 0 {
		s.mu.Lock()
		s.objects[o.Key] = dedupObject{meta: metaOnly(o, o.Key)}
		s.mu.Unlock()
	}
	return nil
}

func metaOnly(meta Object, key Key) Object {
	m := meta
	m.Key = key
	m.Blocks = nil
	if meta.Meta != nil {
		m.Meta = make(map[string]string, len(meta.Meta))
		for k, v := range meta.Meta {
			m.Meta[k] = v
		}
	}
	return m
}

// PutBlock stores one block, deduplicating by content. Only first-seen
// content is paced (it is the only content that moves).
func (s *DedupStore) PutBlock(ctx context.Context, key Key, meta Object, index int, block []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if key.Job == "" {
		return errors.New("iostore: empty job name")
	}
	digest := sha256.Sum256(block)

	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		o = dedupObject{meta: metaOnly(meta, key)}
	}
	for len(o.digests) <= index {
		o.digests = append(o.digests, [sha256.Size]byte{})
		o.present = append(o.present, false)
	}
	// Replacing an existing block releases the old content.
	if o.present[index] {
		s.releaseLocked(o.digests[index])
	}
	o.digests[index] = digest
	o.present[index] = true

	fresh := false
	if rb, exists := s.blocks[digest]; exists {
		rb.refs++
	} else {
		s.blocks[digest] = &refBlock{data: append([]byte(nil), block...), refs: 1}
		s.physicalBytes += int64(len(block))
		fresh = true
	}
	s.logicalBytes += int64(len(block))
	s.objects[key] = o
	s.mu.Unlock()

	if fresh {
		s.pacer.Move(len(block))
		if s.mMisses != nil {
			s.mMisses.Inc()
		}
	} else if s.mHits != nil {
		s.mHits.Inc()
	}
	return nil
}

// releaseLocked drops one reference; caller holds s.mu.
func (s *DedupStore) releaseLocked(digest [sha256.Size]byte) {
	rb, ok := s.blocks[digest]
	if !ok {
		return
	}
	rb.refs--
	s.logicalBytes -= int64(len(rb.data))
	if rb.refs == 0 {
		s.physicalBytes -= int64(len(rb.data))
		delete(s.blocks, digest)
	}
}

// Delete removes an object and releases its content references. Deleting
// an absent object is not an error.
func (s *DedupStore) Delete(ctx context.Context, key Key) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return nil
	}
	for i, d := range o.digests {
		if o.present[i] {
			s.releaseLocked(d)
		}
	}
	delete(s.objects, key)
	return nil
}

// Get reconstructs an object, pacing the full logical transfer (the reader
// still receives every byte).
func (s *DedupStore) Get(ctx context.Context, key Key) (Object, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, err
	}
	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	out := o.meta
	out.Blocks = make([][]byte, len(o.digests))
	total := 0
	for i, d := range o.digests {
		if !o.present[i] {
			continue
		}
		rb, exists := s.blocks[d]
		if !exists {
			s.mu.Unlock()
			return Object{}, fmt.Errorf("iostore: dedup block missing for %s[%d]", key, i)
		}
		out.Blocks[i] = rb.data
		total += len(rb.data)
	}
	s.mu.Unlock()
	s.pacer.Move(total)
	return out, nil
}

// Stat returns metadata without a transfer.
func (s *DedupStore) Stat(ctx context.Context, key Key) (Object, bool, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, false, nil
	}
	return o.meta, true, nil
}

// IDs lists checkpoint IDs for (job, rank), ascending.
func (s *DedupStore) IDs(ctx context.Context, job string, rank int) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for k := range s.objects {
		if k.Job == job && k.Rank == rank {
			out = append(out, k.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Keys enumerates every stored object key, sorted by (job, rank, ID).
func (s *DedupStore) Keys(ctx context.Context) ([]Key, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	out := make([]Key, 0, len(s.objects))
	for k := range s.objects {
		out = append(out, k)
	}
	s.mu.Unlock()
	SortKeys(out)
	return out, nil
}

// Latest returns the newest checkpoint ID for (job, rank).
func (s *DedupStore) Latest(ctx context.Context, job string, rank int) (uint64, bool, error) {
	ids, err := s.IDs(ctx, job, rank)
	if err != nil || len(ids) == 0 {
		return 0, false, err
	}
	return ids[len(ids)-1], true, nil
}

// StatBlocks reports metadata plus block count; DedupStore serves block
// reads from its content table.
func (s *DedupStore) StatBlocks(ctx context.Context, key Key) (Object, int, bool, error) {
	if err := ctx.Err(); err != nil {
		return Object{}, 0, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, 0, false, nil
	}
	return o.meta, len(o.digests), true, nil
}

// GetBlock reconstructs one block from the content table, pacing its
// logical size.
func (s *DedupStore) GetBlock(ctx context.Context, key Key, index int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if index < 0 || index >= len(o.digests) {
		s.mu.Unlock()
		return nil, fmt.Errorf("iostore: %s block %d out of range (object has %d)", key, index, len(o.digests))
	}
	if !o.present[index] {
		s.mu.Unlock()
		return nil, fmt.Errorf("iostore: dedup block missing for %s[%d]", key, index)
	}
	rb, exists := s.blocks[o.digests[index]]
	if !exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("iostore: dedup block missing for %s[%d]", key, index)
	}
	data := rb.data
	s.mu.Unlock()
	s.pacer.Move(len(data))
	return data, nil
}

// DedupStats reports the storage savings.
type DedupStats struct {
	LogicalBytes  int64
	PhysicalBytes int64
	UniqueBlocks  int
}

// Factor returns 1 − physical/logical, the dedup "compression factor".
func (d DedupStats) Factor() float64 {
	if d.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(d.PhysicalBytes)/float64(d.LogicalBytes)
}

// Stats snapshots the dedup accounting.
func (s *DedupStore) Stats() DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DedupStats{
		LogicalBytes:  s.logicalBytes,
		PhysicalBytes: s.physicalBytes,
		UniqueBlocks:  len(s.blocks),
	}
}
