package node

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndpcr/internal/faultinject"
	"ndpcr/internal/node/iostore"
	"ndpcr/internal/node/ndp"
	"ndpcr/internal/node/nvm"
)

func TestCommitAsyncAcksAtNVMThenReachesStore(t *testing.T) {
	n, store := newNode(t, nil)
	id, err := n.CommitAsync(context.Background(), snapshot(8<<10, 1), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The ack point: NVM durability is already established when
	// CommitAsync returns, before any drain work.
	if !n.DurableAt(id, ndp.LevelNVM) {
		t.Fatal("CommitAsync returned without NVM durability")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n.WaitDurableCtx(ctx, id, ndp.LevelStore); err != nil {
		t.Fatalf("waiting for store durability: %v", err)
	}
	if !n.DurableAt(id, ndp.LevelStore) {
		t.Error("store watermark not visible after the wait resolved")
	}
	if _, err := store.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: id}); err != nil {
		t.Errorf("checkpoint %d missing from the store: %v", id, err)
	}
}

// TestCommitAsyncAdmissionNeverErrFull is the admission-control regression:
// concurrent async commits against a near-full device whose residents are
// drain-locked (the store is fault-stalled, so locks are held long) must
// park and then be admitted as drains release space — never surface
// nvm.ErrFull to the committer.
func TestCommitAsyncAdmissionNeverErrFull(t *testing.T) {
	in := faultinject.New(7,
		faultinject.Rule{Site: faultinject.SiteStorePut, Mode: faultinject.ModeStall, Delay: 5 * time.Millisecond},
		faultinject.Rule{Site: faultinject.SiteStorePutBlock, Mode: faultinject.ModeStall, Delay: 5 * time.Millisecond},
	)
	inner := iostore.New(nvm.Pacer{})
	n, _ := newNode(t, func(c *Config) {
		c.Store = faultinject.WrapStore(inner, in)
		// Room for ~2 of the 60 KiB snapshots: committers must contend.
		c.NVMCapacity = 150 << 10
	})

	const commits = 8
	var wg sync.WaitGroup
	errs := make([]error, commits)
	ids := make([]uint64, commits)
	for i := 0; i < commits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			ids[i], errs[i] = n.CommitAsync(ctx, snapshot(60<<10, byte(i)), Metadata{Step: i})
		}(i)
	}
	wg.Wait()
	var max uint64
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, nvm.ErrFull) {
				t.Fatalf("commit %d surfaced ErrFull in async mode: %v", i, err)
			}
			t.Fatalf("commit %d: %v", i, err)
		}
		if ids[i] > max {
			max = ids[i]
		}
	}
	// Every acked ID must become store-durable (directly or superseded by
	// a newer drain — watermark semantics).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, id := range ids {
		if err := n.WaitDurableCtx(ctx, id, ndp.LevelStore); err != nil {
			t.Fatalf("acked commit %d (id %d) never became store-durable: %v", i, id, err)
		}
	}
	if _, err := inner.Get(context.Background(), iostore.Key{Job: "job", Rank: 0, ID: max}); err != nil {
		t.Errorf("newest checkpoint %d missing from the store: %v", max, err)
	}
}

// TestCommitAsyncBackpressureTypedError: when the device cannot admit
// within the caller's deadline because a drain-locked resident pins the
// space, the commit fails with the typed nvm.ErrBackpressure — not ErrFull,
// not a bare deadline error.
func TestCommitAsyncBackpressureTypedError(t *testing.T) {
	in := faultinject.New(7,
		faultinject.Rule{Site: faultinject.SiteStorePut, Mode: faultinject.ModeStall, Delay: 2 * time.Second},
		faultinject.Rule{Site: faultinject.SiteStorePutBlock, Mode: faultinject.ModeStall, Delay: 2 * time.Second},
	)
	n, _ := newNode(t, func(c *Config) {
		c.Store = faultinject.WrapStore(iostore.New(nvm.Pacer{}), in)
		c.NVMCapacity = 100 << 10
	})
	if _, err := n.Commit(snapshot(70<<10, 1), Metadata{Step: 1}); err != nil {
		t.Fatal(err)
	}
	// Wait for the drain to lock the resident (the stalled store holds the
	// lock for its 2s stall — far past this test's admission deadline).
	deadline := time.After(5 * time.Second)
	for n.Device().LockedBytes() == 0 {
		select {
		case <-deadline:
			t.Fatal("drain never locked the resident")
		case <-time.After(time.Millisecond):
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := n.CommitAsync(ctx, snapshot(70<<10, 2), Metadata{Step: 2})
	if !errors.Is(err, nvm.ErrBackpressure) {
		t.Fatalf("got %v, want nvm.ErrBackpressure", err)
	}
	if errors.Is(err, nvm.ErrFull) {
		t.Error("backpressure error must not alias ErrFull")
	}
}

func TestWriteThroughMarksStoreDurable(t *testing.T) {
	n, _ := newNode(t, nil)
	id, err := n.CommitAsync(context.Background(), snapshot(4<<10, 3), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.WriteThrough(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if !n.DurableAt(id, ndp.LevelStore) {
		t.Error("WriteThrough did not advance the store watermark")
	}
}

func TestDiscardCommitFailsDurability(t *testing.T) {
	// A stalled store keeps the checkpoint un-drained long enough to
	// discard it first.
	in := faultinject.New(7,
		faultinject.Rule{Site: faultinject.SiteStorePut, Mode: faultinject.ModeStall, Delay: 200 * time.Millisecond},
		faultinject.Rule{Site: faultinject.SiteStorePutBlock, Mode: faultinject.ModeStall, Delay: 200 * time.Millisecond},
	)
	n, _ := newNode(t, func(c *Config) {
		c.Store = faultinject.WrapStore(iostore.New(nvm.Pacer{}), in)
	})
	id, err := n.CommitAsync(context.Background(), snapshot(4<<10, 4), Metadata{Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.DiscardCommit(id)
	err = n.WaitDurableCtx(context.Background(), id, ndp.LevelStore)
	if !errors.Is(err, ndp.ErrCheckpointFailed) {
		t.Fatalf("wait on discarded commit: got %v, want ErrCheckpointFailed", err)
	}
	if n.DurableAt(id, ndp.LevelStore) {
		t.Error("discarded commit reported store-durable")
	}
}
