// Package stats provides deterministic random variate generation and
// summary statistics for the Monte-Carlo checkpoint/restart simulator.
//
// The simulator needs (a) reproducible streams so experiments are stable
// across runs and machines, and (b) independent substreams so failure
// arrivals and recovery-outcome draws do not perturb each other when a
// configuration knob changes. A small, self-contained SplitMix64/xoshiro256**
// implementation provides both without depending on math/rand's global state.
package stats

import "math"

// splitMix64 advances the given state and returns the next output. It is
// used for seeding xoshiro from a single word, as recommended by the
// xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit seed. Two RNGs with
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new generator seeded from this one's stream. Streams
// produced by distinct Split calls are statistically independent, which lets
// the simulator give each stochastic process (failure arrivals, recovery
// outcomes) its own substream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method is overkill here; simple modulo
	// bias is negligible for the small n used in workload generation, but
	// rejection sampling keeps the stream exactly uniform anyway.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Exp returns an exponentially distributed variate with the given mean.
// Interrupt arrivals in the model are assumed exponentially distributed
// (paper §6.1.1), so this is the simulator's failure clock.
// It panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp with non-positive mean")
	}
	// -mean * ln(1-u) with u in [0,1) avoids ln(0).
	return -mean * math.Log1p(-r.Float64())
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed variate via the Marsaglia polar
// method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm fills a permutation of [0, n) into a new slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
