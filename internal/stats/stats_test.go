package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets = 10
	const n = 200000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d has %d, want ~%.0f", i, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const mean = 1800.0 // 30 min MTTI
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Exp(mean))
	}
	if math.Abs(s.Mean()-mean) > mean*0.02 {
		t.Errorf("Exp mean = %v, want ~%v", s.Mean(), mean)
	}
	// Exponential: stddev == mean.
	if math.Abs(s.StdDev()-mean) > mean*0.05 {
		t.Errorf("Exp stddev = %v, want ~%v", s.StdDev(), mean)
	}
	if s.Min() < 0 {
		t.Errorf("Exp produced negative variate %v", s.Min())
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.85) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.85) > 0.01 {
		t.Errorf("Bernoulli(0.85) frequency = %v", got)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestNormal(t *testing.T) {
	r := NewRNG(17)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Normal(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.05 {
		t.Errorf("Normal mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 0.05 {
		t.Errorf("Normal stddev = %v", s.StdDev())
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Unbiased sample variance of this classic set is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		// Filter out non-finite values quick may generate.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		xs = clean
		if len(xs) == 0 {
			return true
		}
		k := int(split) % (len(xs) + 1)
		var whole, a, b Summary
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			return false
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, whole.Variance())
		return math.Abs(a.Variance()-whole.Variance()) <= 1e-6*vscale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Errorf("merge empty changed summary: %v", a.String())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Errorf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := NewRNG(23)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(r.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("p50 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Must not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negative input should be NaN")
	}
}
