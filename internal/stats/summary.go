package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates observations with Welford's online algorithm, giving
// numerically stable mean and variance without retaining samples.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge combines another summary into this one (parallel reduction).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the ~95% normal-approximation confidence
// interval for the mean. The simulator runs hundreds of trials per point, so
// the normal approximation is adequate.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// String renders "mean ± ci95 (n=…)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It copies and sorts xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
