package trace

import (
	"math"
	"testing"

	"ndpcr/internal/units"
)

func TestGenerateValidation(t *testing.T) {
	good := Config{MTTI: 100, Horizon: 1000, Ranks: 4, PLocal: 0.85, Seed: 1}
	if _, err := Generate(good); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MTTI: 0, Horizon: 1, Ranks: 1},
		{MTTI: 1, Horizon: 0, Ranks: 1},
		{MTTI: 1, Horizon: 1, Ranks: 0},
		{MTTI: 1, Horizon: 1, Ranks: 1, PLocal: 2},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateStatistics(t *testing.T) {
	cfg := Config{MTTI: 100, Horizon: 100000, Ranks: 8, PLocal: 0.85, Seed: 7}
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ~1000 events.
	if len(events) < 850 || len(events) > 1150 {
		t.Errorf("got %d events, want ~1000", len(events))
	}
	local := 0
	rankCounts := make([]int, 8)
	prev := units.Seconds(0)
	for _, e := range events {
		if e.At <= prev || e.At >= cfg.Horizon {
			t.Fatalf("event time %v out of order or range", e.At)
		}
		prev = e.At
		if e.Rank < 0 || e.Rank >= 8 {
			t.Fatalf("rank %d out of range", e.Rank)
		}
		rankCounts[e.Rank]++
		if e.Local {
			local++
		}
	}
	if frac := float64(local) / float64(len(events)); math.Abs(frac-0.85) > 0.05 {
		t.Errorf("local fraction %v, want ~0.85", frac)
	}
	for r, n := range rankCounts {
		if n < len(events)/8/2 {
			t.Errorf("rank %d got only %d failures", r, n)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{MTTI: 50, Horizon: 5000, Ranks: 2, PLocal: 0.5, Seed: 3}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReplayer(t *testing.T) {
	events := []Event{{At: 30, Rank: 1}, {At: 10, Rank: 0}, {At: 20, Rank: 2}}
	r := NewReplayer(events) // sorts defensively
	if got := r.Advance(5); len(got) != 0 {
		t.Errorf("Advance(5) = %v", got)
	}
	got := r.Advance(20)
	if len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 2 {
		t.Errorf("Advance(20) = %v", got)
	}
	if r.Remaining() != 1 {
		t.Errorf("remaining = %d", r.Remaining())
	}
	if got := r.Advance(100); len(got) != 1 || got[0].Rank != 1 {
		t.Errorf("Advance(100) = %v", got)
	}
	if got := r.Advance(1000); len(got) != 0 {
		t.Errorf("exhausted replayer returned %v", got)
	}
}

func TestGenerateHorizonBoundaryExclusive(t *testing.T) {
	// The schedule is the half-open interval [0, Horizon): an interrupt
	// drawn exactly at the horizon must be excluded. Replaying the same
	// seed reproduces the same arrival times, so shrinking the horizon to
	// exactly an event's time must drop that event and keep the prefix.
	cfg := Config{MTTI: 100, Horizon: 10000, Ranks: 4, PLocal: 0.5, Seed: 11}
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("need at least 2 events, got %d", len(events))
	}
	for _, e := range events {
		if e.At >= cfg.Horizon {
			t.Fatalf("event at %v not strictly before horizon %v", e.At, cfg.Horizon)
		}
	}
	cut := len(events) / 2
	cfg.Horizon = events[cut].At
	truncated, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(truncated) != cut {
		t.Fatalf("horizon at event %d's time kept %d events, want %d (boundary must be exclusive)",
			cut, len(truncated), cut)
	}
	for i := range truncated {
		if truncated[i] != events[i] {
			t.Errorf("event %d changed under shorter horizon", i)
		}
	}
}

func TestGenerateSingleRank(t *testing.T) {
	events, err := Generate(Config{MTTI: 50, Horizon: 5000, Ranks: 1, PLocal: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for _, e := range events {
		if e.Rank != 0 {
			t.Fatalf("single-rank schedule struck rank %d", e.Rank)
		}
	}
}

func TestGeneratePLocalExtremes(t *testing.T) {
	for _, pl := range []float64{0, 1} {
		events, err := Generate(Config{MTTI: 50, Horizon: 5000, Ranks: 2, PLocal: pl, Seed: 9})
		if err != nil {
			t.Fatalf("PLocal=%v rejected: %v", pl, err)
		}
		if len(events) == 0 {
			t.Fatal("no events")
		}
		for _, e := range events {
			if e.Local != (pl == 1) {
				t.Fatalf("PLocal=%v drew Local=%v", pl, e.Local)
			}
		}
	}
}

func TestGenerateEmptyWhenHorizonTiny(t *testing.T) {
	// A horizon far below the MTTI usually produces no events; the schedule
	// must be empty, not nil-deref or include a post-horizon event.
	events, err := Generate(Config{MTTI: 1e12, Horizon: 1e-9, Ranks: 3, PLocal: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.At >= 1e-9 {
			t.Fatalf("event at %v beyond tiny horizon", e.At)
		}
	}
}
