// Package trace generates and replays deterministic failure schedules.
// The model assumes interrupts are exponentially distributed (§6.1.1);
// examples and cluster tests draw their injected failures from the same
// process so behaviour matches the analytical assumptions.
package trace

import (
	"errors"
	"sort"

	"ndpcr/internal/stats"
	"ndpcr/internal/units"
)

// Event is one failure: at time At, rank Rank fails. Local reports whether
// the failure is recoverable from node-local storage (true) or destroys it
// (false), drawn with the configured probability.
type Event struct {
	At    units.Seconds
	Rank  int
	Local bool
}

// Config parameterizes a schedule.
type Config struct {
	// MTTI is the *system* mean time to interrupt: failures across all
	// ranks arrive as one Poisson process at rate 1/MTTI.
	MTTI units.Seconds
	// Horizon bounds the schedule.
	Horizon units.Seconds
	// Ranks is the number of ranks; each failure strikes one uniformly.
	Ranks int
	// PLocal is the probability a failure is local-recoverable.
	PLocal float64
	// Seed makes the schedule deterministic.
	Seed uint64
}

// Generate returns the failure events in time order.
func Generate(cfg Config) ([]Event, error) {
	if cfg.MTTI <= 0 {
		return nil, errors.New("trace: MTTI must be positive")
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("trace: Horizon must be positive")
	}
	if cfg.Ranks <= 0 {
		return nil, errors.New("trace: Ranks must be positive")
	}
	if cfg.PLocal < 0 || cfg.PLocal > 1 {
		return nil, errors.New("trace: PLocal out of [0,1]")
	}
	rng := stats.NewRNG(cfg.Seed)
	var events []Event
	t := units.Seconds(0)
	for {
		t += units.Seconds(rng.Exp(float64(cfg.MTTI)))
		if t >= cfg.Horizon {
			break
		}
		events = append(events, Event{
			At:    t,
			Rank:  rng.Intn(cfg.Ranks),
			Local: rng.Bernoulli(cfg.PLocal),
		})
	}
	return events, nil
}

// Replayer walks a schedule against an advancing clock.
type Replayer struct {
	events []Event
	next   int
}

// NewReplayer wraps a schedule (sorted by time; Generate's output already
// is, arbitrary input is sorted defensively).
func NewReplayer(events []Event) *Replayer {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &Replayer{events: sorted}
}

// Advance returns every event with At in (prev, now], in order.
func (r *Replayer) Advance(now units.Seconds) []Event {
	var out []Event
	for r.next < len(r.events) && r.events[r.next].At <= now {
		out = append(out, r.events[r.next])
		r.next++
	}
	return out
}

// Remaining returns the number of unfired events.
func (r *Replayer) Remaining() int { return len(r.events) - r.next }
