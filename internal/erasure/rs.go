package erasure

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
)

// Common errors.
var (
	// ErrUnrecoverable reports more than m missing shards: the erasure set
	// cannot reconstruct and recovery must fall back to the next level.
	ErrUnrecoverable = errors.New("erasure: too many missing shards to reconstruct")
	// ErrShardGeometry reports shard slices inconsistent with the code
	// (wrong count, unequal lengths, missing data shards on encode).
	ErrShardGeometry = errors.New("erasure: bad shard geometry")
)

// MaxShards bounds k+m: GF(2^8) Cauchy coordinates must be distinct bytes.
const MaxShards = 255

// Code is a systematic (k+m, k) Reed-Solomon erasure code over GF(2^8):
// k equal-length data shards produce m parity shards such that any k of
// the k+m shards reconstruct the data. m=1 degenerates to plain XOR
// parity (the RAID-5 fast path); m>1 uses Cauchy generator rows, whose
// every square submatrix is invertible, making the code MDS.
//
// A Code is immutable after New and safe for concurrent use.
type Code struct {
	k, m int
	// gen holds the m parity generator rows (k coefficients each). For
	// m=1 it is the all-ones row, so parity is the XOR of the data.
	gen [][]byte
}

// New builds a code with k data and m parity shards. Requires k ≥ 1,
// m ≥ 1, and k+m ≤ MaxShards.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("erasure: need k >= 1 data and m >= 1 parity shards, got k=%d m=%d", k, m)
	}
	if k+m > MaxShards {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds %d", k+m, MaxShards)
	}
	c := &Code{k: k, m: m, gen: make([][]byte, m)}
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			if m == 1 {
				row[j] = 1 // XOR parity
			} else {
				// Cauchy: 1/(x_i + y_j) with x_i = k+i, y_j = j. The
				// coordinate sets are disjoint, so x_i ^ y_j != 0.
				row[j] = gfInv(byte(k+i) ^ byte(j))
			}
		}
		c.gen[i] = row
	}
	return c, nil
}

// K returns the data shard count.
func (c *Code) K() int { return c.k }

// M returns the parity shard count.
func (c *Code) M() int { return c.m }

// Encode computes the m parity shards from the k data shards. shards must
// hold k+m entries whose first k are equal-length data shards; the final m
// entries are (re)allocated as needed and overwritten. Parity shards are
// computed concurrently, one goroutine per shard, in the spirit of the
// block-parallel compressor.
func (c *Code) Encode(shards [][]byte) error {
	shardLen, err := c.checkData(shards)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for r := 0; r < c.m; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := shards[c.k+r]
			if cap(out) < shardLen {
				out = make([]byte, shardLen)
			}
			out = out[:shardLen]
			c.encodeRow(r, shards[:c.k], out)
			shards[c.k+r] = out
		}(r)
	}
	wg.Wait()
	return nil
}

// encodeRow fills out with parity row r of the given data shards.
func (c *Code) encodeRow(r int, data [][]byte, out []byte) {
	mulSlice(c.gen[r][0], data[0], out)
	for j := 1; j < c.k; j++ {
		mulXorSlice(c.gen[r][j], data[j], out)
	}
}

// Verify reports whether the parity shards are consistent with the data
// shards (all k+m present and equal length).
func (c *Code) Verify(shards [][]byte) (bool, error) {
	shardLen, err := c.checkData(shards)
	if err != nil {
		return false, err
	}
	buf := make([]byte, shardLen)
	for r := 0; r < c.m; r++ {
		p := shards[c.k+r]
		if len(p) != shardLen {
			return false, nil
		}
		c.encodeRow(r, shards[:c.k], buf)
		for i := range buf {
			if buf[i] != p[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct fills in missing (nil) shards in place from any k surviving
// shards. Present shards must all have equal length. With more than m
// shards missing it returns ErrUnrecoverable and leaves shards untouched.
func (c *Code) Reconstruct(shards [][]byte) error {
	n := c.k + c.m
	if len(shards) != n {
		return fmt.Errorf("%w: got %d shards, code is (%d+%d)", ErrShardGeometry, len(shards), c.k, c.m)
	}
	avail := make([]int, 0, n)
	shardLen := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return fmt.Errorf("%w: shard %d has %d bytes, others %d", ErrShardGeometry, i, len(s), shardLen)
		}
		avail = append(avail, i)
	}
	if len(avail) < c.k {
		return fmt.Errorf("%w: %d of %d shards present, need %d", ErrUnrecoverable, len(avail), n, c.k)
	}
	var missingData []int
	for j := 0; j < c.k; j++ {
		if shards[j] == nil {
			missingData = append(missingData, j)
		}
	}
	if len(missingData) > 0 {
		if err := c.reconstructData(shards, avail[:c.k], missingData, shardLen); err != nil {
			return err
		}
	}
	// Data is complete now; recompute any missing parity directly.
	for r := 0; r < c.m; r++ {
		if shards[c.k+r] != nil {
			continue
		}
		out := make([]byte, shardLen)
		c.encodeRow(r, shards[:c.k], out)
		shards[c.k+r] = out
	}
	return nil
}

// reconstructData recovers the missing data shards from the k selected
// surviving rows. rows is ascending, so data shards are preferred over
// parity rows (identity rows make the decode matrix sparser).
func (c *Code) reconstructData(shards [][]byte, rows, missingData []int, shardLen int) error {
	// XOR fast path: single missing data shard in an m=1 (or any) code
	// where the selected rows are the other k-1 data shards plus the XOR
	// parity row.
	if c.m == 1 && len(missingData) == 1 {
		out := make([]byte, shardLen)
		copy(out, shards[c.k])
		for j := 0; j < c.k; j++ {
			if j != missingData[0] {
				subtle.XORBytes(out, out, shards[j])
			}
		}
		shards[missingData[0]] = out
		return nil
	}
	// General path: invert the k×k submatrix of the generator formed by
	// the chosen surviving rows, then each missing data shard j is the
	// j-th row of the inverse applied to those survivors.
	a := make([][]byte, c.k)
	for t, idx := range rows {
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1
		} else {
			copy(row, c.gen[idx-c.k])
		}
		a[t] = row
	}
	inv, err := invertMatrix(a)
	if err != nil {
		// Cannot happen for the Cauchy construction; surface loudly.
		return fmt.Errorf("erasure: internal: decode matrix singular: %w", err)
	}
	var wg sync.WaitGroup
	for _, j := range missingData {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			out := make([]byte, shardLen)
			mulSlice(inv[j][0], shards[rows[0]], out)
			for t := 1; t < c.k; t++ {
				mulXorSlice(inv[j][t], shards[rows[t]], out)
			}
			shards[j] = out
		}(j)
	}
	wg.Wait()
	return nil
}

// checkData validates the data shards for encode/verify and returns the
// shard length.
func (c *Code) checkData(shards [][]byte) (int, error) {
	if len(shards) != c.k+c.m {
		return 0, fmt.Errorf("%w: got %d shards, code is (%d+%d)", ErrShardGeometry, len(shards), c.k, c.m)
	}
	if shards[0] == nil {
		return 0, fmt.Errorf("%w: data shard 0 is nil", ErrShardGeometry)
	}
	shardLen := len(shards[0])
	for j := 1; j < c.k; j++ {
		if shards[j] == nil || len(shards[j]) != shardLen {
			return 0, fmt.Errorf("%w: data shard %d missing or wrong length", ErrShardGeometry, j)
		}
	}
	return shardLen, nil
}

// invertMatrix inverts a square GF(2^8) matrix via Gauss-Jordan. The input
// rows are consumed.
func invertMatrix(a [][]byte) ([][]byte, error) {
	k := len(a)
	inv := make([][]byte, k)
	for i := range inv {
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("erasure: singular matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := a[col][col]; p != 1 {
			ip := gfInv(p)
			for j := 0; j < k; j++ {
				a[col][j] = gfMul(a[col][j], ip)
				inv[col][j] = gfMul(inv[col][j], ip)
			}
		}
		for r := 0; r < k; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < k; j++ {
				a[r][j] ^= gfMul(f, a[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}

// Split copies data into k equal-length shards, zero-padding the tail
// shard. The original length must be carried alongside (the shard wire
// header does) for Join to trim the padding.
func Split(data []byte, k int) ([][]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: split into %d shards", k)
	}
	shardLen := (len(data) + k - 1) / k
	shards := make([][]byte, k)
	for i := 0; i < k; i++ {
		s := make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(data) {
			copy(s, data[lo:])
		}
		shards[i] = s
	}
	return shards, nil
}

// Join appends the original data (trimmed to size) reassembled from the
// data shards to dst.
func Join(dst []byte, shards [][]byte, size int) ([]byte, error) {
	if size < 0 {
		return nil, fmt.Errorf("erasure: join to negative size %d", size)
	}
	total := 0
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrShardGeometry, i)
		}
		total += len(s)
	}
	if total < size {
		return nil, fmt.Errorf("%w: %d shard bytes cannot yield %d", ErrShardGeometry, total, size)
	}
	remaining := size
	for _, s := range shards {
		if remaining <= 0 {
			break
		}
		n := len(s)
		if n > remaining {
			n = remaining
		}
		dst = append(dst, s[:n]...)
		remaining -= n
	}
	return dst, nil
}
