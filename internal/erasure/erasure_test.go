package erasure

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ndpcr/internal/stats"
)

// testPayload builds a deterministic checkpoint-like payload: smooth runs,
// zero pages, and noise, in the spirit of real mini-app state.
func testPayload(n int, seed uint64) []byte {
	rng := stats.NewRNG(seed)
	out := make([]byte, n)
	i := 0
	for i < n {
		run := 16 + rng.Intn(200)
		if run > n-i {
			run = n - i
		}
		switch rng.Intn(3) {
		case 0: // zero page
			i += run
		case 1: // smooth ramp
			b := byte(rng.Intn(256))
			for j := 0; j < run; j++ {
				out[i+j] = b + byte(j/4)
			}
			i += run
		default: // noise
			for j := 0; j < run; j++ {
				out[i+j] = byte(rng.Uint64())
			}
			i += run
		}
	}
	return out
}

// combinations yields all ways to choose r elements from [0, n).
func combinations(n, r int) [][]int {
	var out [][]int
	idx := make([]int, r)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == r {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

// TestAnyMErasuresReconstruct is the acceptance property: for every
// k∈{2,4,8}, m∈{1,2,3}, ANY m shard erasures reconstruct the original
// checkpoint byte-identically (digest-verified), and m+1 erasures are
// detected as unrecoverable with the typed error.
func TestAnyMErasuresReconstruct(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		for _, m := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("k%d_m%d", k, m), func(t *testing.T) {
				code, err := New(k, m)
				if err != nil {
					t.Fatal(err)
				}
				// An odd size that does not divide evenly exercises padding.
				orig := testPayload(k*1000+37, uint64(k*10+m))
				crc := ChecksumData(orig)
				data, err := Split(orig, k)
				if err != nil {
					t.Fatal(err)
				}
				full := append(data, make([][]byte, m)...)
				if err := code.Encode(full); err != nil {
					t.Fatal(err)
				}
				if ok, err := code.Verify(full); err != nil || !ok {
					t.Fatalf("Verify = %v, %v", ok, err)
				}
				// Every way to erase exactly m shards must reconstruct.
				for _, lost := range combinations(k+m, m) {
					shards := make([][]byte, k+m)
					for i := range full {
						shards[i] = full[i]
					}
					for _, i := range lost {
						shards[i] = nil
					}
					if err := code.Reconstruct(shards); err != nil {
						t.Fatalf("erasing %v: %v", lost, err)
					}
					for i := range full {
						if !bytes.Equal(shards[i], full[i]) {
							t.Fatalf("erasing %v: shard %d differs after reconstruct", lost, i)
						}
					}
					got, err := Join(nil, shards[:k], len(orig))
					if err != nil {
						t.Fatalf("erasing %v: join: %v", lost, err)
					}
					if ChecksumData(got) != crc || !bytes.Equal(got, orig) {
						t.Fatalf("erasing %v: reconstructed data differs", lost)
					}
				}
				// m+1 erasures: typed unrecoverable error, shards untouched.
				shards := make([][]byte, k+m)
				for i := range full {
					shards[i] = full[i]
				}
				for _, i := range combinations(k+m, m+1)[0] {
					shards[i] = nil
				}
				if err := code.Reconstruct(shards); !errors.Is(err, ErrUnrecoverable) {
					t.Fatalf("m+1 erasures: err = %v, want ErrUnrecoverable", err)
				}
			})
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {250, 10}} {
		if _, err := New(tc[0], tc[1]); err == nil {
			t.Errorf("New(%d, %d) accepted", tc[0], tc[1])
		}
	}
	if c, err := New(253, 2); err != nil || c.K() != 253 || c.M() != 2 {
		t.Errorf("New(253, 2) = %v, %v", c, err)
	}
}

func TestEncodeGeometryErrors(t *testing.T) {
	code, _ := New(2, 1)
	if err := code.Encode(make([][]byte, 2)); !errors.Is(err, ErrShardGeometry) {
		t.Errorf("short shard slice: %v", err)
	}
	if err := code.Encode([][]byte{{1, 2}, {3}, nil}); !errors.Is(err, ErrShardGeometry) {
		t.Errorf("unequal data shards: %v", err)
	}
	if err := code.Encode([][]byte{{1, 2}, nil, nil}); !errors.Is(err, ErrShardGeometry) {
		t.Errorf("nil data shard: %v", err)
	}
	if err := code.Reconstruct([][]byte{{1}, {2}, {3, 4}}); !errors.Is(err, ErrShardGeometry) {
		t.Errorf("unequal survivor lengths: %v", err)
	}
}

func TestXORParityMatchesManualXOR(t *testing.T) {
	// The m=1 fast path must be plain XOR, byte for byte.
	code, _ := New(3, 1)
	shards := [][]byte{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, nil}
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := shards[0][i] ^ shards[1][i] ^ shards[2][i]
		if shards[3][i] != want {
			t.Fatalf("parity[%d] = %d, want XOR %d", i, shards[3][i], want)
		}
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 1000} {
		orig := testPayload(n, uint64(n+1))
		shards, err := Split(orig, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Join(nil, shards, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, orig) {
			t.Errorf("size %d: round trip mismatch", n)
		}
	}
	if _, err := Split(nil, 0); err == nil {
		t.Error("Split k=0 accepted")
	}
	if _, err := Join(nil, [][]byte{{1}}, 5); err == nil {
		t.Error("Join beyond shard bytes accepted")
	}
	if _, err := Join(nil, [][]byte{nil}, 0); err == nil {
		t.Error("Join with nil shard accepted")
	}
}

func TestShardWireRoundTrip(t *testing.T) {
	s := Shard{
		K: 8, M: 2, Index: 9, CkptID: 42, Step: 17,
		OrigSize: 100, DataCRC: 0xdeadbeef,
		Payload: testPayload(13, 3),
	}
	wire := AppendShard(nil, s)
	got, err := DecodeShard(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != s.K || got.M != s.M || got.Index != s.Index ||
		got.CkptID != s.CkptID || got.Step != s.Step ||
		got.OrigSize != s.OrigSize || got.DataCRC != s.DataCRC ||
		!bytes.Equal(got.Payload, s.Payload) {
		t.Errorf("round trip: got %+v want %+v", got, s)
	}
}

func TestShardWireRejectsCorruption(t *testing.T) {
	wire := AppendShard(nil, Shard{K: 2, M: 1, Index: 0, CkptID: 1, OrigSize: 4, Payload: []byte("abcd")})
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x40
		if _, err := DecodeShard(bad); !errors.Is(err, ErrBadShard) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadShard", i, err)
		}
	}
	for _, b := range [][]byte{nil, {1, 2, 3}, wire[:len(wire)-1]} {
		if _, err := DecodeShard(b); !errors.Is(err, ErrBadShard) {
			t.Errorf("truncated %d bytes: err = %v", len(b), err)
		}
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check the tables: a·inv(a) = 1, distributivity, known products.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a·a⁻¹ != 1 for a=%d", a)
		}
	}
	rng := stats.NewRNG(9)
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64())
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity fails: %d %d", a, b)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails: %d %d %d", a, b, c)
		}
		if b != 0 && gfDiv(gfMul(a, b), b) != a {
			t.Fatalf("div inverse fails: %d %d", a, b)
		}
	}
	if gfDiv(0, 7) != 0 {
		t.Error("0/x != 0")
	}
}

func TestReconstructIsDeterministicUnderConcurrency(t *testing.T) {
	// Parallel goroutine-per-shard encode/reconstruct must be stable
	// across runs (raced by `go test -race`).
	code, _ := New(8, 3)
	orig := testPayload(64<<10, 5)
	data, _ := Split(orig, 8)
	full := append(data, make([][]byte, 3)...)
	if err := code.Encode(full); err != nil {
		t.Fatal(err)
	}
	ref := AppendShard(nil, Shard{K: 8, M: 3, Index: 0, Payload: full[8]})
	for round := 0; round < 10; round++ {
		shards := make([][]byte, 11)
		copy(shards, full)
		shards[0], shards[5], shards[8] = nil, nil, nil
		if err := code.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		got := AppendShard(nil, Shard{K: 8, M: 3, Index: 0, Payload: shards[8]})
		if !bytes.Equal(got, ref) {
			t.Fatal("parity reconstruction unstable across rounds")
		}
	}
}
