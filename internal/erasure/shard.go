package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The striped shard wire format. Each shard of an encoded checkpoint is
// stored (and shipped) self-describing, so a surviving node can identify a
// shard's geometry and position without any external metadata:
//
//	magic   "NDPE" (4 bytes)
//	version 1      (1 byte)
//	uvarint k, m, index, ckptID, step, origSize, dataCRC
//	uvarint payloadLen, then payload bytes
//	crc32c of everything above (4 bytes, little-endian)
//
// dataCRC is the CRC-32C of the ORIGINAL (unsplit) checkpoint; every shard
// of the same checkpoint carries the same value, so a reconstruction can be
// digest-verified end to end. The trailing CRC covers this one shard's
// header+payload and detects torn or corrupted shard objects.

// Shard is one decoded wire shard.
type Shard struct {
	// K and M are the code geometry; Index identifies this shard's row
	// (0..K-1 data, K..K+M-1 parity).
	K, M, Index int
	// CkptID is the global checkpoint ID the shard belongs to.
	CkptID uint64
	// Step is the application step recorded at that checkpoint.
	Step int
	// OrigSize is the original checkpoint length before split padding.
	OrigSize int64
	// DataCRC is the CRC-32C of the original checkpoint payload.
	DataCRC uint32
	// Payload is this shard's stripe. On decode it aliases the wire
	// buffer; treat it as read-only.
	Payload []byte
}

// Wire format constants.
var (
	shardMagic = [4]byte{'N', 'D', 'P', 'E'}
	// ErrBadShard reports a malformed or corrupted wire shard.
	ErrBadShard = errors.New("erasure: malformed shard")

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

const shardVersion = 1

// ChecksumData returns the CRC-32C carried as Shard.DataCRC.
func ChecksumData(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// AppendShard appends the wire encoding of s to dst.
func AppendShard(dst []byte, s Shard) []byte {
	start := len(dst)
	dst = append(dst, shardMagic[:]...)
	dst = append(dst, shardVersion)
	dst = binary.AppendUvarint(dst, uint64(s.K))
	dst = binary.AppendUvarint(dst, uint64(s.M))
	dst = binary.AppendUvarint(dst, uint64(s.Index))
	dst = binary.AppendUvarint(dst, s.CkptID)
	dst = binary.AppendUvarint(dst, uint64(s.Step))
	dst = binary.AppendUvarint(dst, uint64(s.OrigSize))
	dst = binary.AppendUvarint(dst, uint64(s.DataCRC))
	dst = binary.AppendUvarint(dst, uint64(len(s.Payload)))
	dst = append(dst, s.Payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// DecodeShard parses and digest-verifies one wire shard. The returned
// payload aliases b.
func DecodeShard(b []byte) (Shard, error) {
	var s Shard
	if len(b) < len(shardMagic)+1+4 {
		return s, fmt.Errorf("%w: %d bytes", ErrBadShard, len(b))
	}
	if [4]byte(b[:4]) != shardMagic {
		return s, fmt.Errorf("%w: bad magic", ErrBadShard)
	}
	if b[4] != shardVersion {
		return s, fmt.Errorf("%w: unknown version %d", ErrBadShard, b[4])
	}
	// Verify the trailing CRC before trusting any varint field.
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return s, fmt.Errorf("%w: digest mismatch", ErrBadShard)
	}
	rest := body[5:]
	fields := make([]uint64, 8)
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return s, fmt.Errorf("%w: truncated header field %d", ErrBadShard, i)
		}
		fields[i] = v
		rest = rest[n:]
	}
	k, m, index := fields[0], fields[1], fields[2]
	if k < 1 || m < 1 || k+m > MaxShards {
		return s, fmt.Errorf("%w: geometry k=%d m=%d", ErrBadShard, k, m)
	}
	if index >= k+m {
		return s, fmt.Errorf("%w: shard index %d of %d", ErrBadShard, index, k+m)
	}
	payloadLen := fields[7]
	if payloadLen != uint64(len(rest)) {
		return s, fmt.Errorf("%w: payload length %d, have %d bytes", ErrBadShard, payloadLen, len(rest))
	}
	if fields[5] > k*payloadLen {
		return s, fmt.Errorf("%w: original size %d exceeds %d shard bytes", ErrBadShard, fields[5], k*payloadLen)
	}
	if fields[4] > 1<<40 || fields[6] > 1<<32-1 {
		return s, fmt.Errorf("%w: implausible header values", ErrBadShard)
	}
	s.K, s.M, s.Index = int(k), int(m), int(index)
	s.CkptID = fields[3]
	s.Step = int(fields[4])
	s.OrigSize = int64(fields[5])
	s.DataCRC = uint32(fields[6])
	s.Payload = rest
	return s, nil
}
