// Package erasure implements the redundancy-set level of multilevel
// checkpoint/restart: a systematic Reed-Solomon erasure code over GF(2^8)
// (k data + m parity shards, tolerating any m shard losses), XOR as the
// m=1 fast path, and a self-describing striped shard wire format. The
// cluster layer encodes each coordinated checkpoint across node groups so
// that "node group lost, I/O not needed" failures recover at near-partner
// cost instead of falling back to the global I/O store.
package erasure

import "crypto/subtle"

// gfPoly is the reduction polynomial x^8 + x^4 + x^3 + x^2 + 1 — the
// classic Rijndael-independent 0x11d used by most RS erasure coders.
const gfPoly = 0x11d

var (
	// gfExp[i] = g^i for generator g=2, doubled so products of two logs
	// (each < 255) index without a modulo.
	gfExp [510]byte
	// gfLog[x] = log_g(x); gfLog[0] is unused (log of zero is undefined).
	gfLog [256]byte
	// gfMulTable[a][b] = a·b. 64 KiB; turns the inner encode loop into a
	// single table lookup per byte.
	gfMulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < len(gfExp); i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(gfLog[a])
		for b := 1; b < 256; b++ {
			gfMulTable[a][b] = gfExp[la+int(gfLog[b])]
		}
	}
}

func gfMul(a, b byte) byte { return gfMulTable[a][b] }

// gfInv returns the multiplicative inverse; it panics on zero (a code bug:
// the Cauchy construction guarantees nonzero pivots).
func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfMul(a, gfInv(b))
}

// mulXorSlice accumulates out[i] ^= c·in[i] — the GF(2^8) SAXPY at the
// heart of both encode and reconstruct.
func mulXorSlice(c byte, in, out []byte) {
	switch c {
	case 0:
		return
	case 1:
		subtle.XORBytes(out, out, in)
		return
	}
	mt := &gfMulTable[c]
	for i, v := range in {
		out[i] ^= mt[v]
	}
}

// mulSlice sets out[i] = c·in[i].
func mulSlice(c byte, in, out []byte) {
	switch c {
	case 0:
		for i := range out[:len(in)] {
			out[i] = 0
		}
		return
	case 1:
		copy(out, in)
		return
	}
	mt := &gfMulTable[c]
	for i, v := range in {
		out[i] = mt[v]
	}
}
