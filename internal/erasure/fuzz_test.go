package erasure

import (
	"bytes"
	"testing"
)

// FuzzShardDecode checks the wire decoder never panics on arbitrary input
// and that accepted shards re-encode to the identical wire bytes.
func FuzzShardDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("NDPE"))
	f.Add(AppendShard(nil, Shard{K: 2, M: 1, Index: 0, CkptID: 1, OrigSize: 4, Payload: []byte("abcd")}))
	f.Add(AppendShard(nil, Shard{K: 8, M: 3, Index: 10, CkptID: 1 << 39, Step: 1000, OrigSize: 0, DataCRC: 0xffffffff}))
	big := AppendShard(nil, Shard{K: 4, M: 2, Index: 5, CkptID: 7, Step: 3, OrigSize: 100, DataCRC: 42, Payload: bytes.Repeat([]byte{0xA5}, 32)})
	f.Add(big)
	corrupt := append([]byte(nil), big...)
	corrupt[len(corrupt)/2] ^= 0x01
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeShard(data)
		if err != nil {
			return
		}
		// An accepted shard must satisfy the documented invariants and
		// round-trip byte-identically.
		if s.K < 1 || s.M < 1 || s.K+s.M > MaxShards || s.Index >= s.K+s.M {
			t.Fatalf("accepted shard with bad geometry: %+v", s)
		}
		if s.OrigSize < 0 || s.OrigSize > int64(s.K)*int64(len(s.Payload)) {
			t.Fatalf("accepted shard with impossible size: %+v", s)
		}
		if got := AppendShard(nil, s); !bytes.Equal(got, data) {
			t.Fatalf("re-encode differs from accepted wire bytes")
		}
	})
}
